//! Offline vendored `serde` derive macros.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! vendored mini-serde's `Value` data model, without `syn`/`quote`: the item
//! is parsed directly from the `proc_macro::TokenStream`. Supported shapes —
//! the ones this workspace uses — are plain (non-generic) structs with named
//! fields, tuple structs (single-field tuples use serde's newtype
//! representation), unit structs, and enums whose variants are unit, tuple
//! or struct-like. `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes leading attributes (`#[...]`) and a visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracketed group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(in path)
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses the comma-separated named fields of a brace group, returning the
/// field names. Commas inside angle brackets or nested groups don't split.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        names.push(name.to_string());
        // Skip past `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        i += 1;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    names
}

/// Counts the comma-separated entries of a paren group (tuple fields).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_content_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_content_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_content_since_comma = true;
    }
    if !saw_content_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional discriminant and the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g))
                }
                _ => Fields::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g),
            }),
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn named_fields_to_map(fields: &[String], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(String::from(\"{f}\"), serde::Serialize::to_value({access_prefix}{f}))"))
        .collect();
    format!("serde::Value::Map(vec![{}])", entries.join(", "))
}

fn named_fields_from_map(fields: &[String], src: &str, ctx: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: serde::Deserialize::from_value({src}.get_field(\"{f}\")\
                 .ok_or_else(|| serde::DeError(String::from(\"missing field `{f}` in {ctx}\")))?)?"
            )
        })
        .collect();
    inits.join(", ")
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Named(fs) => named_fields_to_map(fs, "&self."),
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        {body}\n    }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => serde::Value::Str(String::from(\"{vn}\"))"
                        ),
                        Fields::Named(fs) => {
                            let pat: Vec<String> = fs.to_vec();
                            let inner = named_fields_to_map(fs, "");
                            format!(
                                "{name}::{vn} {{ {} }} => serde::Value::Map(vec![(String::from(\"{vn}\"), {inner})])",
                                pat.join(", ")
                            )
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => serde::Value::Map(vec![(String::from(\"{vn}\"), serde::Serialize::to_value(x0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Value::Map(vec![(String::from(\"{vn}\"), serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        match self {{\n            {}\n        }}\n    }}\n}}",
                arms.join(",\n            ")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Named(fs) => {
                    let inits = named_fields_from_map(fs, "v", name);
                    format!(
                        "match v {{\n            serde::Value::Map(_) => Ok({name} {{ {inits} }}),\n            other => Err(serde::DeError::expected(\"map for struct {name}\", other)),\n        }}"
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match v {{\n            serde::Value::Seq(items) if items.len() == {n} => Ok({name}({})),\n            other => Err(serde::DeError::expected(\"{n}-element sequence for {name}\", other)),\n        }}",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n        {body}\n    }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Named(fs) => {
                            let inits = named_fields_from_map(
                                fs,
                                "payload",
                                &format!("{name}::{vn}"),
                            );
                            Some(format!("\"{vn}\" => Ok({name}::{vn} {{ {inits} }})"))
                        }
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(payload)?))"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match payload {{\n                    serde::Value::Seq(items) if items.len() == {n} => Ok({name}::{vn}({})),\n                    other => Err(serde::DeError::expected(\"{n}-element sequence for {name}::{vn}\", other)),\n                }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n        match v {{\n            serde::Value::Str(s) => match s.as_str() {{\n                {unit}\n                other => Err(serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n            }},\n            serde::Value::Map(entries) if entries.len() == 1 => {{\n                let (tag, payload) = &entries[0];\n                match tag.as_str() {{\n                    {tagged}\n                    other => Err(serde::DeError(format!(\"unknown variant `{{other}}` of {name}\"))),\n                }}\n            }}\n            other => Err(serde::DeError::expected(\"variant of {name}\", other)),\n        }}\n    }}\n}}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n                "))
                },
                tagged = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(",\n                    "))
                },
            )
        }
    }
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("vendored serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error! emission failed"),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, generate_serialize)
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, generate_deserialize)
}
