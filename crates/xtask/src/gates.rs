//! Rule family 6: feature-gate consistency.
//!
//! The workspace's cfg surface follows one pattern: a feature-gated module
//! exposes its real API under `#[cfg(feature = "…")]` and a no-op shim with
//! the *same names and signatures* under `#[cfg(not(feature = "…"))]`, so
//! downstream code compiles identically in every cfg combination. This rule
//! checks that contract per file:
//!
//! * every facade-visible (`pub` through pub parents) item gated on a
//!   feature must have a counterpart gated on `not(feature)` — and vice
//!   versa; a one-sided name means some cfg combination fails to compile
//!   or silently loses API surface;
//! * paired `fn` items must agree on their signature (parameter names are
//!   compared with leading underscores stripped, since shims conventionally
//!   use `_name` for unused parameters);
//! * deliberately asymmetric items (e.g. a fault-injection-only escape
//!   hatch) carry `// lint: gate-ok (<reason>)` in their attribute block.
//!
//! Workspace-wide, the failpoint registry is audited: every seam listed in
//! `PIPELINE_FAILPOINTS` (crates/faults/src/plan.rs) must be armed by
//! exactly one `failpoint::check("…")` site — zero means a dead plan entry,
//! two means double-triggering under chaos tests.

use crate::diag::{Rule, Violation};
use crate::lex::TokenKind;
use crate::source::Analysis;
use crate::structure::{Ctx, Item, ItemKind};

const ANNOTATION: &str = "lint: gate-ok (";

/// One exported name on one side of a feature gate.
#[derive(Debug)]
struct GatedName {
    name: String,
    /// 1-based line to anchor diagnostics at.
    line: usize,
    /// Normalised fn signature, when the item is a fn.
    fn_sig: Option<String>,
}

/// Signature normalisation: leading underscores stripped from every ident
/// token so `fn check(point: &str)` pairs with `fn check(_point: &str)`.
fn normalise_sig(sig: &str) -> String {
    sig.split(' ')
        .map(|w| {
            if w.len() > 1
                && w.starts_with('_')
                && w[1..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                &w[1..]
            } else {
                w
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// True if the item's attribute block, its own lines, or the contiguous
/// comment block directly above carries a gate-ok reason.
fn has_gate_ok(analysis: &Analysis, item: &Item) -> bool {
    let lo = item.attr_start_line.saturating_sub(1);
    let hi = item.start_line.min(analysis.raw.len());
    if analysis.raw[lo..hi.max(lo)]
        .iter()
        .any(|l| l.contains(ANNOTATION))
        || analysis
            .raw
            .get(item.start_line.saturating_sub(1))
            .is_some_and(|l| l.contains(ANNOTATION))
    {
        return true;
    }
    // Walk the comment/attribute block above the item.
    let mut i = lo;
    while i > 0 {
        let t = analysis.raw[i - 1].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") {
            if t.contains(ANNOTATION) {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    false
}

/// Facade-visible names one item contributes (use items fan out).
fn exported_names(item: &Item) -> Vec<(String, Option<String>)> {
    if !item.is_pub || !item.parents_pub {
        return Vec::new();
    }
    match item.kind {
        ItemKind::Use => item.use_names.iter().map(|n| (n.clone(), None)).collect(),
        ItemKind::Impl => Vec::new(),
        _ => item
            .name
            .iter()
            .map(|n| (n.clone(), item.sig_text.as_deref().map(normalise_sig)))
            .collect(),
    }
}

/// Checks gate symmetry within one file.
pub fn check_file(rel_path: &str, analysis: &Analysis) -> Vec<Violation> {
    let items = analysis.items();
    // Features mentioned by any cfg gate in the file.
    let mut features: Vec<&str> = items
        .iter()
        .flat_map(|i| i.cfg.iter().map(|g| g.feature.as_str()))
        .collect();
    features.sort_unstable();
    features.dedup();

    let mut out = Vec::new();
    for feature in features {
        // Partition facade names into the gated side and the not() side.
        let mut on: Vec<(GatedName, &Item)> = Vec::new();
        let mut off: Vec<(GatedName, &Item)> = Vec::new();
        for item in &items {
            if item.is_test_gated {
                continue;
            }
            let Some(gate) = item.cfg.iter().find(|g| g.feature == feature) else {
                continue;
            };
            let side = if gate.negated { &mut off } else { &mut on };
            for (name, fn_sig) in exported_names(item) {
                side.push((
                    GatedName {
                        name,
                        line: item.start_line,
                        fn_sig,
                    },
                    item,
                ));
            }
        }
        if on.is_empty() && off.is_empty() {
            continue;
        }
        for (here, there, here_side, there_side) in
            [(&on, &off, "", "not()"), (&off, &on, "not()", "")]
        {
            for (gated, item) in here {
                match there.iter().find(|(g, _)| g.name == gated.name) {
                    None => {
                        if has_gate_ok(analysis, item) {
                            continue;
                        }
                        out.push(Violation {
                            file: rel_path.to_string(),
                            line: gated.line,
                            rule: Rule::FeatureGate,
                            message: format!(
                                "pub `{}` exists under `{}cfg(feature = \"{feature}\")` but has \
                                 no counterpart under `{}cfg(feature = \"{feature}\")` — add a \
                                 matching shim or annotate with `// lint: gate-ok (<reason>)`",
                                gated.name, here_side, there_side
                            ),
                            line_text: analysis
                                .raw
                                .get(gated.line - 1)
                                .cloned()
                                .unwrap_or_default(),
                        });
                    }
                    Some((counterpart, _)) => {
                        // Compare fn signatures once, from the gated side.
                        if here_side.is_empty() {
                            if let (Some(a), Some(b)) = (&gated.fn_sig, &counterpart.fn_sig) {
                                if a != b && !has_gate_ok(analysis, item) {
                                    out.push(Violation {
                                        file: rel_path.to_string(),
                                        line: gated.line,
                                        rule: Rule::FeatureGate,
                                        message: format!(
                                            "shim signature mismatch for `{}` across \
                                             `cfg(feature = \"{feature}\")`: `{a}` vs `{b}`",
                                            gated.name
                                        ),
                                        line_text: analysis
                                            .raw
                                            .get(gated.line - 1)
                                            .cloned()
                                            .unwrap_or_default(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Extracts the seam names from the `PIPELINE_FAILPOINTS` array literal.
pub fn registered_failpoints(plan_src: &str) -> Vec<String> {
    let tokens = crate::lex::lex(plan_src);
    let ctx = Ctx::new(plan_src, &tokens);
    let mut names = Vec::new();
    let mut si = 0;
    while si < ctx.sig.len() {
        if ctx.kind(si) == TokenKind::Ident && ctx.text(si) == "PIPELINE_FAILPOINTS" {
            // Skip the type annotation (`: [&str; N]`) by scanning to the
            // `=`, then collect Str tokens inside the array literal.
            let mut sj = si + 1;
            while sj < ctx.sig.len() && !ctx.is_punct(sj, '=') {
                sj += 1;
            }
            while sj < ctx.sig.len() && !ctx.is_punct(sj, '[') {
                sj += 1;
            }
            let Some(close) = ctx.matching_close(sj) else {
                break;
            };
            for sk in sj + 1..close {
                if ctx.kind(sk) == TokenKind::Str {
                    names.push(ctx.text(sk).trim_matches('"').to_string());
                }
            }
            break;
        }
        si += 1;
    }
    names
}

/// `failpoint::check("…")` call sites in one file (line, seam name).
/// The `check` *definition* takes an identifier parameter, not a string
/// literal, so it never matches.
pub fn failpoint_arm_sites(analysis: &Analysis) -> Vec<(usize, String)> {
    let ctx = analysis.ctx();
    let mut sites = Vec::new();
    for si in 3..ctx.sig.len() {
        if ctx.kind(si) != TokenKind::Str {
            continue;
        }
        // …failpoint :: check ( "name"
        if !(ctx.is_punct(si - 1, '(')
            && ctx.kind(si - 2) == TokenKind::Ident
            && ctx.text(si - 2) == "check"
            && si >= 5
            && ctx.is_punct(si - 3, ':')
            && ctx.is_punct(si - 4, ':')
            && ctx.kind(si - 5) == TokenKind::Ident
            && ctx.text(si - 5) == "failpoint")
        {
            continue;
        }
        let line = ctx.line(si);
        if analysis.in_test.get(line - 1).copied().unwrap_or(false) {
            continue;
        }
        sites.push((line, ctx.text(si).trim_matches('"').to_string()));
    }
    sites
}

/// Workspace-level failpoint audit: every registered seam armed at exactly
/// one site. `sites` maps a file to its arm sites.
pub fn check_failpoint_arity(
    plan_rel_path: &str,
    plan_src: &str,
    sites: &[(String, Vec<(usize, String)>)],
) -> Vec<Violation> {
    let registered = registered_failpoints(plan_src);
    if registered.is_empty() {
        return Vec::new();
    }
    let plan_lines: Vec<&str> = plan_src.lines().collect();
    let mut out = Vec::new();
    for seam in &registered {
        let arms: Vec<(&str, usize)> = sites
            .iter()
            .flat_map(|(file, s)| {
                s.iter()
                    .filter(|(_, name)| name == seam)
                    .map(move |(line, _)| (file.as_str(), *line))
            })
            .collect();
        if arms.len() == 1 {
            continue;
        }
        let plan_line = plan_lines
            .iter()
            .position(|l| l.contains(&format!("\"{seam}\"")))
            .map_or(0, |i| i + 1);
        let message = if arms.is_empty() {
            format!(
                "failpoint seam `{seam}` is registered in PIPELINE_FAILPOINTS but armed at \
                 no `failpoint::check(\"{seam}\")` site — dead plan entry"
            )
        } else {
            let list: Vec<String> = arms.iter().map(|(f, l)| format!("{f}:{l}")).collect();
            format!(
                "failpoint seam `{seam}` is armed at {} sites ({}) — chaos plans assume \
                 exactly one trigger per seam",
                arms.len(),
                list.join(", ")
            )
        };
        out.push(Violation {
            file: plan_rel_path.to_string(),
            line: plan_line,
            rule: Rule::FeatureGate,
            message,
            line_text: plan_lines
                .get(plan_line.saturating_sub(1))
                .map(|l| (*l).to_string())
                .unwrap_or_default(),
        });
    }
    // Arms for seams nobody registered are equally suspect.
    for (file, s) in sites {
        for (line, name) in s {
            if !registered.iter().any(|r| r == name) {
                out.push(Violation {
                    file: file.clone(),
                    line: *line,
                    rule: Rule::FeatureGate,
                    message: format!(
                        "`failpoint::check(\"{name}\")` arms a seam that is not registered \
                         in PIPELINE_FAILPOINTS — chaos plans cannot schedule it"
                    ),
                    line_text: String::new(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Violation> {
        check_file("crates/hdc/src/obs.rs", &Analysis::new(src))
    }

    const SYMMETRIC: &str = "#[cfg(feature = \"obs\")]\n\
                             pub use hyperfex_obs::{span, counter_add};\n\
                             #[cfg(not(feature = \"obs\"))]\n\
                             mod noop {\n\
                                 pub fn span(_name: &'static str) {}\n\
                                 pub fn counter_add(_name: &'static str, _by: u64) {}\n\
                             }\n\
                             #[cfg(not(feature = \"obs\"))]\n\
                             pub use noop::{span, counter_add};\n";

    #[test]
    fn symmetric_shim_is_clean() {
        assert!(check(SYMMETRIC).is_empty());
    }

    #[test]
    fn missing_shim_name_is_flagged() {
        let src = "#[cfg(feature = \"obs\")]\n\
                   pub use hyperfex_obs::{span, counter_add, observe};\n\
                   #[cfg(not(feature = \"obs\"))]\n\
                   mod noop {\n\
                       pub fn span(_name: &'static str) {}\n\
                       pub fn counter_add(_name: &'static str, _by: u64) {}\n\
                   }\n\
                   #[cfg(not(feature = \"obs\"))]\n\
                   pub use noop::{span, counter_add};\n";
        let v = check(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FeatureGate);
        assert!(v[0].message.contains("observe"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn gate_ok_annotation_waives_asymmetry() {
        let src = "impl Hv {\n\
                       // lint: gate-ok (raw corruption escape hatch: chaos builds only)\n\
                       #[cfg(feature = \"fault-injection\")]\n\
                       pub fn raw_words_mut(&mut self) -> &mut [u64] { &mut self.words }\n\
                   }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn signature_mismatch_between_fn_pairs_is_flagged() {
        let src = "#[cfg(feature = \"fault-injection\")]\n\
                   pub fn check(point: &str, extra: u32) {}\n\
                   #[cfg(not(feature = \"fault-injection\"))]\n\
                   pub fn check(_point: &str) {}\n";
        let v = check(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("signature mismatch"));
    }

    #[test]
    fn underscore_params_pair_with_named_params() {
        let src = "#[cfg(feature = \"fault-injection\")]\n\
                   pub fn check(point: &str) -> bool { crate::arm(point) }\n\
                   #[cfg(not(feature = \"fault-injection\"))]\n\
                   pub fn check(_point: &str) -> bool { false }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn private_items_are_not_part_of_the_facade() {
        let src = "#[cfg(feature = \"obs\")]\n\
                   fn helper() {}\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn failpoint_registry_and_arms_are_extracted() {
        let plan = "pub const PIPELINE_FAILPOINTS: [&str; 2] = [\n\
                        \"hdc/encode_batch\",\n\
                        \"data/load_csv\",\n\
                    ];\n";
        assert_eq!(
            registered_failpoints(plan),
            ["hdc/encode_batch", "data/load_csv"]
        );
        let armed =
            Analysis::new("fn encode() {\n    crate::failpoint::check(\"hdc/encode_batch\");\n}\n");
        assert_eq!(
            failpoint_arm_sites(&armed),
            [(2, "hdc/encode_batch".to_string())]
        );
    }

    #[test]
    fn failpoint_arity_zero_and_two_are_violations() {
        let plan = "pub const PIPELINE_FAILPOINTS: [&str; 2] = [\"a/one\", \"b/two\"];\n";
        let sites = vec![
            (
                "crates/hdc/src/x.rs".to_string(),
                vec![(4, "a/one".to_string()), (9, "a/one".to_string())],
            ),
            ("crates/data/src/y.rs".to_string(), vec![]),
        ];
        let v = check_failpoint_arity("crates/faults/src/plan.rs", plan, &sites);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|x| x.message.contains("2 sites")));
        assert!(v.iter().any(|x| x.message.contains("no `failpoint::check")));
    }
}
