//! k-nearest-neighbours classification (Fix & Hodges 1952) over Euclidean
//! distance, matching scikit-learn's `KNeighborsClassifier` defaults.

use crate::error::MlError;
use crate::linalg::Matrix;
use crate::traits::{validate_fit_inputs, Estimator, ProbabilisticEstimator};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Neighbour vote weighting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KnnWeights {
    /// One vote per neighbour (sklearn default).
    Uniform,
    /// Votes weighted by inverse distance.
    Distance,
}

/// Hyper-parameters (defaults match scikit-learn: `k = 5`, uniform).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnParams {
    /// Number of neighbours.
    pub k: usize,
    /// Vote weighting.
    pub weights: KnnWeights,
}

impl Default for KnnParams {
    fn default() -> Self {
        Self {
            k: 5,
            weights: KnnWeights::Uniform,
        }
    }
}

/// A fitted (memorised) k-NN classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnClassifier {
    params: KnnParams,
    x: Option<Matrix>,
    y: Vec<usize>,
    n_classes: usize,
}

impl KnnClassifier {
    /// Creates an unfitted classifier.
    #[must_use]
    pub fn new(params: KnnParams) -> Self {
        Self {
            params,
            x: None,
            y: Vec::new(),
            n_classes: 0,
        }
    }

    fn vote(&self, row: &[f32]) -> Result<Vec<f64>, MlError> {
        let x = self.x.as_ref().ok_or(MlError::NotFitted)?;
        if row.len() != x.n_cols() {
            return Err(MlError::ShapeMismatch {
                expected: format!("{} features", x.n_cols()),
                got: format!("{} features", row.len()),
            });
        }
        let k = self.params.k.min(x.n_rows());
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
        for i in 0..x.n_rows() {
            let d = Matrix::squared_distance(row, x.row(i));
            let pos = best.partition_point(|&(bd, bi)| bd < d || (bd == d && bi < i));
            if pos < k {
                best.insert(pos, (d, i));
                best.truncate(k);
            }
        }
        let mut votes = vec![0.0f64; self.n_classes];
        for &(d, i) in &best {
            let w = match self.params.weights {
                KnnWeights::Uniform => 1.0,
                KnnWeights::Distance => 1.0 / (f64::from(d).sqrt() + 1e-12),
            };
            votes[self.y[i]] += w;
        }
        Ok(votes)
    }
}

impl Estimator for KnnClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<(), MlError> {
        if self.params.k == 0 {
            return Err(MlError::InvalidParameter {
                name: "k",
                reason: "must be at least 1".into(),
            });
        }
        let n_classes = validate_fit_inputs(x, y)?;
        self.n_classes = n_classes;
        self.x = Some(x.clone());
        self.y = y.to_vec();
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<usize>, MlError> {
        (0..x.n_rows())
            .into_par_iter()
            .map(|i| {
                let votes = self.vote(x.row(i))?;
                Ok(votes
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                    .map_or(0, |(c, _)| c))
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

impl ProbabilisticEstimator for KnnClassifier {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        (0..x.n_rows())
            .into_par_iter()
            .map(|i| {
                let votes = self.vote(x.row(i))?;
                let total: f64 = votes.iter().sum();
                Ok(votes.get(1).copied().unwrap_or(0.0) / total.max(1e-12))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> (Matrix, Vec<usize>) {
        let rows: Vec<Vec<f32>> = (0..10)
            .map(|i| vec![i as f32, 0.0])
            .chain((20..30).map(|i| vec![i as f32, 0.0]))
            .collect();
        let y: Vec<usize> = std::iter::repeat_n(0, 10)
            .chain(std::iter::repeat_n(1, 10))
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn classifies_line_clusters() {
        let (x, y) = line_data();
        let mut knn = KnnClassifier::new(KnnParams::default());
        knn.fit(&x, &y).unwrap();
        let q = Matrix::from_rows(&[vec![4.0, 0.0], vec![26.0, 0.0]]).unwrap();
        assert_eq!(knn.predict(&q).unwrap(), vec![0, 1]);
        assert_eq!(knn.accuracy(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn k1_memorises_training_data() {
        let (x, y) = line_data();
        let mut knn = KnnClassifier::new(KnnParams {
            k: 1,
            weights: KnnWeights::Uniform,
        });
        knn.fit(&x, &y).unwrap();
        assert_eq!(knn.predict(&x).unwrap(), y);
    }

    #[test]
    fn distance_weighting_breaks_uniform_ties() {
        // Query at 2.0: neighbours at distance 1 (class 0, twice) vs the
        // k=3 window pulling in a farther class-1 point at 3.5.
        let x = Matrix::from_rows(&[vec![1.0], vec![3.0], vec![3.5], vec![3.6]]).unwrap();
        let y = vec![0, 1, 1, 1];
        let mut uniform = KnnClassifier::new(KnnParams {
            k: 3,
            weights: KnnWeights::Uniform,
        });
        uniform.fit(&x, &y).unwrap();
        let q = Matrix::from_rows(&[vec![1.2]]).unwrap();
        // Uniform k=3: neighbours {1.0 (c0), 3.0 (c1), 3.5 (c1)} → class 1.
        assert_eq!(uniform.predict(&q).unwrap(), vec![1]);
        let mut weighted = KnnClassifier::new(KnnParams {
            k: 3,
            weights: KnnWeights::Distance,
        });
        weighted.fit(&x, &y).unwrap();
        // Weighted: the much closer 1.0 dominates → class 0.
        assert_eq!(weighted.predict(&q).unwrap(), vec![0]);
    }

    #[test]
    fn proba_counts_neighbour_fractions() {
        let (x, y) = line_data();
        let mut knn = KnnClassifier::new(KnnParams::default());
        knn.fit(&x, &y).unwrap();
        let q = Matrix::from_rows(&[vec![5.0, 0.0]]).unwrap();
        let p = knn.predict_proba(&q).unwrap();
        assert_eq!(p, vec![0.0]);
    }

    #[test]
    fn k_larger_than_train_set_is_clamped() {
        let x = Matrix::from_rows(&[vec![0.0], vec![10.0], vec![11.0]]).unwrap();
        let y = vec![0, 1, 1];
        let mut knn = KnnClassifier::new(KnnParams {
            k: 50,
            weights: KnnWeights::Uniform,
        });
        knn.fit(&x, &y).unwrap();
        // All three vote: class 1 wins everywhere.
        let q = Matrix::from_rows(&[vec![0.0]]).unwrap();
        assert_eq!(knn.predict(&q).unwrap(), vec![1]);
    }

    #[test]
    fn invalid_k_and_unfitted_errors() {
        let (x, y) = line_data();
        let mut knn = KnnClassifier::new(KnnParams {
            k: 0,
            weights: KnnWeights::Uniform,
        });
        assert!(matches!(
            knn.fit(&x, &y),
            Err(MlError::InvalidParameter { name: "k", .. })
        ));
        let knn = KnnClassifier::new(KnnParams::default());
        assert!(knn.predict(&x).is_err());
    }

    #[test]
    fn feature_mismatch_at_predict_errors() {
        let (x, y) = line_data();
        let mut knn = KnnClassifier::new(KnnParams::default());
        knn.fit(&x, &y).unwrap();
        assert!(knn.predict(&Matrix::zeros(1, 3)).is_err());
    }
}
