//! k-nearest-neighbour classification under Hamming distance.

use crate::binary::BinaryHypervector;
use crate::error::HdcError;
use rayon::prelude::*;

/// A k-NN classifier over stored hypervectors.
///
/// The paper's pure-HDC model (§II-C) is `k = 1`: "Record the predicted
/// class as the known class of the closest hypervector." Larger `k` with
/// majority or distance-weighted voting is provided as the natural
/// extension; ties in both distance and vote break toward the lowest class
/// index for determinism.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HammingKnnClassifier {
    k: usize,
    weighted: bool,
    train: Vec<BinaryHypervector>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl HammingKnnClassifier {
    /// Creates an unfitted classifier with `k` neighbours and unweighted
    /// majority voting.
    ///
    /// Returns [`HdcError::InvalidConfig`] if `k == 0` — the same typed
    /// error form as [`crate::classify::LeaveOneOut::with_k`].
    pub fn new(k: usize) -> Result<Self, HdcError> {
        if k == 0 {
            return Err(HdcError::InvalidConfig("k must be at least 1".into()));
        }
        Ok(Self {
            k,
            weighted: false,
            train: Vec::new(),
            labels: Vec::new(),
            n_classes: 0,
        })
    }

    /// Enables inverse-distance weighting of neighbour votes.
    #[must_use]
    pub fn with_distance_weighting(mut self) -> Self {
        self.weighted = true;
        self
    }

    /// Stores the training set.
    pub fn fit(
        &mut self,
        hypervectors: Vec<BinaryHypervector>,
        labels: Vec<usize>,
    ) -> Result<(), HdcError> {
        if hypervectors.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        if hypervectors.len() != labels.len() {
            return Err(HdcError::LabelLengthMismatch {
                samples: hypervectors.len(),
                labels: labels.len(),
            });
        }
        let dim = hypervectors[0].dim();
        if let Some(bad) = hypervectors.iter().find(|hv| hv.dim() != dim) {
            return Err(HdcError::DimensionMismatch {
                left: dim.get(),
                right: bad.dim().get(),
            });
        }
        self.n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        self.train = hypervectors;
        self.labels = labels;
        Ok(())
    }

    /// Number of stored training examples.
    #[must_use]
    pub fn n_train(&self) -> usize {
        self.train.len()
    }

    /// Predicts the class of one query hypervector.
    pub fn predict(&self, query: &BinaryHypervector) -> Result<usize, HdcError> {
        self.predict_excluding(query, usize::MAX)
    }

    /// Predicts while ignoring training index `exclude` (used by
    /// leave-one-out validation; pass `usize::MAX` to exclude nothing).
    pub fn predict_excluding(
        &self,
        query: &BinaryHypervector,
        exclude: usize,
    ) -> Result<usize, HdcError> {
        if self.train.is_empty() {
            return Err(HdcError::NotFitted);
        }
        crate::obs::counter_add("hdc/knn_queries", 1);
        // Collect (distance, index) of the k best neighbours with a simple
        // bounded insertion — k is tiny (1..=15) so this beats a heap.
        let mut best: Vec<(usize, usize)> = Vec::with_capacity(self.k + 1);
        for (i, hv) in self.train.iter().enumerate() {
            if i == exclude {
                continue;
            }
            let d = query.try_hamming(hv)?;
            let pos = best.partition_point(|&(bd, bi)| (bd, bi) < (d, i));
            if pos < self.k {
                best.insert(pos, (d, i));
                best.truncate(self.k);
            }
        }
        if best.is_empty() {
            return Err(HdcError::NotFitted);
        }
        // Vote.
        let mut votes = vec![0.0f64; self.n_classes];
        for &(d, i) in &best {
            let w = if self.weighted {
                1.0 / (1.0 + d as f64)
            } else {
                1.0
            };
            votes[self.labels[i]] += w;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
            .ok_or(HdcError::NotFitted)
    }

    /// Predicts a batch in parallel.
    pub fn predict_batch(&self, queries: &[BinaryHypervector]) -> Result<Vec<usize>, HdcError> {
        let _span = crate::obs::span("hdc/knn_predict_batch");
        queries.par_iter().map(|q| self.predict(q)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::Dim;
    use crate::encoding::LinearEncoder;

    fn clustered_data() -> (Vec<BinaryHypervector>, Vec<usize>) {
        // Two clusters along a level-encoded axis: low values class 0,
        // high values class 1.
        let enc = LinearEncoder::new(Dim::new(4_096), 0.0, 100.0, 42).unwrap();
        let mut hvs = Vec::new();
        let mut labels = Vec::new();
        for v in [5.0, 10.0, 15.0, 20.0] {
            hvs.push(enc.encode(v));
            labels.push(0);
        }
        for v in [80.0, 85.0, 90.0, 95.0] {
            hvs.push(enc.encode(v));
            labels.push(1);
        }
        (hvs, labels)
    }

    #[test]
    fn one_nn_classifies_clusters() {
        let (hvs, labels) = clustered_data();
        let enc = LinearEncoder::new(Dim::new(4_096), 0.0, 100.0, 42).unwrap();
        let mut clf = HammingKnnClassifier::new(1).unwrap();
        clf.fit(hvs, labels).unwrap();
        assert_eq!(clf.predict(&enc.encode(12.0)).unwrap(), 0);
        assert_eq!(clf.predict(&enc.encode(88.0)).unwrap(), 1);
        assert_eq!(clf.n_train(), 8);
    }

    #[test]
    fn k3_majority_resists_single_outlier() {
        let enc = LinearEncoder::new(Dim::new(4_096), 0.0, 100.0, 7).unwrap();
        // One mislabeled point at 50 (class 1) among class-0 neighbours.
        let hvs = vec![
            enc.encode(48.0),
            enc.encode(52.0),
            enc.encode(50.0),
            enc.encode(95.0),
        ];
        let labels = vec![0, 0, 1, 1];
        let mut k1 = HammingKnnClassifier::new(1).unwrap();
        k1.fit(hvs.clone(), labels.clone()).unwrap();
        let mut k3 = HammingKnnClassifier::new(3).unwrap();
        k3.fit(hvs, labels).unwrap();
        let query = enc.encode(50.5);
        // 1-NN is fooled by the outlier; 3-NN recovers.
        assert_eq!(k1.predict(&query).unwrap(), 1);
        assert_eq!(k3.predict(&query).unwrap(), 0);
    }

    #[test]
    fn distance_weighting_prefers_close_neighbours() {
        let enc = LinearEncoder::new(Dim::new(4_096), 0.0, 100.0, 3).unwrap();
        // Two far class-0 points, one adjacent class-1 point; k = 3.
        let hvs = vec![enc.encode(10.0), enc.encode(12.0), enc.encode(49.0)];
        let labels = vec![0, 0, 1];
        let mut plain = HammingKnnClassifier::new(3).unwrap();
        plain.fit(hvs.clone(), labels.clone()).unwrap();
        let mut weighted = HammingKnnClassifier::new(3)
            .unwrap()
            .with_distance_weighting();
        weighted.fit(hvs, labels).unwrap();
        let query = enc.encode(50.0);
        assert_eq!(
            plain.predict(&query).unwrap(),
            0,
            "unweighted majority picks class 0"
        );
        assert_eq!(
            weighted.predict(&query).unwrap(),
            1,
            "weighting favours the near neighbour"
        );
    }

    #[test]
    fn unfitted_predict_errors() {
        let clf = HammingKnnClassifier::new(1).unwrap();
        let q = BinaryHypervector::zeros(Dim::new(64));
        assert_eq!(clf.predict(&q), Err(HdcError::NotFitted));
    }

    #[test]
    fn fit_validates_inputs() {
        let mut clf = HammingKnnClassifier::new(1).unwrap();
        assert_eq!(clf.fit(vec![], vec![]), Err(HdcError::EmptyInput));
        let hv = BinaryHypervector::zeros(Dim::new(64));
        assert!(matches!(
            clf.fit(vec![hv.clone()], vec![0, 1]),
            Err(HdcError::LabelLengthMismatch { .. })
        ));
        let other = BinaryHypervector::zeros(Dim::new(128));
        assert!(matches!(
            clf.fit(vec![hv, other], vec![0, 1]),
            Err(HdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_k_is_a_typed_error() {
        assert!(matches!(
            HammingKnnClassifier::new(0),
            Err(HdcError::InvalidConfig(_))
        ));
    }

    #[test]
    fn exclusion_skips_self_match() {
        let (hvs, labels) = clustered_data();
        let mut clf = HammingKnnClassifier::new(1).unwrap();
        clf.fit(hvs.clone(), labels).unwrap();
        // Excluding index 0, the prediction for hvs[0] must come from a
        // different (still class-0) neighbour.
        assert_eq!(clf.predict_excluding(&hvs[0], 0).unwrap(), 0);
    }

    #[test]
    fn batch_matches_sequential() {
        let (hvs, labels) = clustered_data();
        let mut clf = HammingKnnClassifier::new(1).unwrap();
        clf.fit(hvs.clone(), labels).unwrap();
        let batch = clf.predict_batch(&hvs).unwrap();
        for (q, &p) in hvs.iter().zip(&batch) {
            assert_eq!(clf.predict(q).unwrap(), p);
        }
    }

    #[test]
    fn query_dimension_mismatch_errors() {
        let (hvs, labels) = clustered_data();
        let mut clf = HammingKnnClassifier::new(1).unwrap();
        clf.fit(hvs, labels).unwrap();
        let bad = BinaryHypervector::zeros(Dim::new(64));
        assert!(matches!(
            clf.predict(&bad),
            Err(HdcError::DimensionMismatch { .. })
        ));
    }
}
