//! Leave-one-out Hamming classification cost on both cohorts — the paper's
//! "most cost-effective approach" (§III-A): the entire validation is one
//! O(n²) distance sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperfex::HammingModel;
use hyperfex_hdc::binary::Dim;
use std::hint::black_box;

fn bench_loocv(c: &mut Criterion) {
    let datasets = hyperfex::experiments::Datasets::generate(42).unwrap();
    let mut g = c.benchmark_group("hamming_loocv_10k");
    g.sample_size(10);
    g.bench_function("pima_r_392", |b| {
        b.iter(|| {
            black_box(
                HammingModel::new(Dim::PAPER, 42)
                    .evaluate_loocv(&datasets.pima_r)
                    .unwrap(),
            )
        });
    });
    g.bench_function("sylhet_520", |b| {
        b.iter(|| {
            black_box(
                HammingModel::new(Dim::PAPER, 42)
                    .evaluate_loocv(&datasets.sylhet)
                    .unwrap(),
            )
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_loocv
}
criterion_main!(benches);
