//! Pure-hyperspace online models: the perceptron, passive-aggressive and
//! LVQ trainers evaluated like the paper's Hamming model — encode every
//! patient once, then leave-one-out validation. Unlike 1-NN ("we only
//! need to measure distances"), each fold refits a small prototype model
//! with pocketed multi-epoch training, so the comparison isolates what
//! the trained prototypes add over raw distance lookups.

use crate::error::HyperfexError;
use crate::extractor::HdcFeatureExtractor;
use hyperfex_data::Table;
use hyperfex_eval::metrics::{BinaryMetrics, ConfusionMatrix};
use hyperfex_hdc::binary::Dim;
use hyperfex_hdc::classify::LoocvOutcome;
use hyperfex_ml::online::{OnlineHdcClassifier, OnlineTrainerKind, DEFAULT_EPOCHS};
use rayon::prelude::*;

/// End-to-end pure-HDC online model: encode, then LOOCV with a prototype
/// trainer refitted per held-out fold.
#[derive(Debug, Clone)]
pub struct OnlineHdcModel {
    dim: Dim,
    seed: u64,
    kind: OnlineTrainerKind,
    epochs: usize,
}

impl OnlineHdcModel {
    /// Creates the default configuration for one update rule.
    #[must_use]
    pub fn new(dim: Dim, seed: u64, kind: OnlineTrainerKind) -> Self {
        Self {
            dim,
            seed,
            kind,
            epochs: DEFAULT_EPOCHS,
        }
    }

    /// Uses `epochs` pocketed retraining epochs per fold instead of the
    /// default (validated when the per-fold classifier is built).
    #[must_use]
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// The update rule this model applies.
    #[must_use]
    pub fn kind(&self) -> OnlineTrainerKind {
        self.kind
    }

    /// Runs the full pipeline: encode every patient, then leave-one-out
    /// validation with a freshly pocket-fitted trainer per fold.
    ///
    /// Like [`crate::hamming::HammingModel::evaluate_loocv`] the encoder
    /// ranges are fitted on the whole table — encoding is part of dataset
    /// preparation, shared across folds.
    pub fn evaluate_loocv(&self, table: &Table) -> Result<LoocvOutcome, HyperfexError> {
        let _span = crate::obs::span("core/online_loocv");
        let mut extractor = HdcFeatureExtractor::new(self.dim, self.seed);
        let hvs = extractor.fit_transform(table)?;
        let labels = table.labels();
        if hvs.len() < 2 {
            return Err(HyperfexError::Pipeline(
                "LOOCV needs at least two rows".into(),
            ));
        }
        let predictions = (0..hvs.len())
            .into_par_iter()
            .map(|held_out| -> Result<usize, HyperfexError> {
                let train_hvs: Vec<_> = hvs
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != held_out)
                    .map(|(_, hv)| hv.clone())
                    .collect();
                let train_labels: Vec<usize> = labels
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != held_out)
                    .map(|(_, &l)| l)
                    .collect();
                let mut clf = OnlineHdcClassifier::with_epochs(self.kind, self.epochs)?;
                clf.fit_hypervectors(&train_hvs, &train_labels)?;
                let mut p = clf.predict_hypervectors(std::slice::from_ref(&hvs[held_out]))?;
                p.pop()
                    .ok_or_else(|| HyperfexError::Pipeline("predict returned no prediction".into()))
            })
            .collect::<Result<Vec<usize>, _>>()?;
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        Ok(LoocvOutcome::from_predictions(
            labels,
            &predictions,
            n_classes,
        ))
    }

    /// Derives the paper's metric set from a LOOCV outcome.
    #[must_use]
    pub fn metrics(outcome: &LoocvOutcome) -> Option<BinaryMetrics> {
        outcome
            .binary_counts()
            .map(|(tp, tn, fp, fn_)| ConfusionMatrix { tp, tn, fp, fn_ }.metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperfex_data::sylhet::{self, SylhetConfig};

    fn cohort() -> Table {
        sylhet::generate(&SylhetConfig {
            n_positive: 40,
            n_negative: 30,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn every_trainer_beats_the_base_rate_under_loocv() {
        let table = cohort();
        for kind in OnlineTrainerKind::ALL {
            let outcome = OnlineHdcModel::new(Dim::new(1_000), 3, kind)
                .evaluate_loocv(&table)
                .unwrap();
            assert_eq!(outcome.total, 70);
            // Base rate = 40/70 ≈ 0.57; the Sylhet symptoms separate well.
            assert!(
                outcome.accuracy() > 0.7,
                "{kind:?} accuracy {}",
                outcome.accuracy()
            );
            let m = OnlineHdcModel::metrics(&outcome).unwrap();
            assert!(m.recall > 0.5, "{kind:?} recall {}", m.recall);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let table = cohort();
        let run = || {
            OnlineHdcModel::new(Dim::new(512), 5, OnlineTrainerKind::Perceptron)
                .evaluate_loocv(&table)
                .unwrap()
        };
        assert_eq!(run().predictions, run().predictions);
    }

    #[test]
    fn epochs_are_validated_and_tiny_tables_rejected() {
        let table = cohort();
        let err = OnlineHdcModel::new(Dim::new(256), 0, OnlineTrainerKind::Lvq)
            .with_epochs(0)
            .evaluate_loocv(&table)
            .unwrap_err();
        assert!(matches!(err, HyperfexError::Ml(_)), "{err}");
        let two = Table::new(
            table.columns().to_vec(),
            vec![table.row(0).to_vec()],
            vec![table.labels()[0]],
        )
        .unwrap();
        assert!(
            OnlineHdcModel::new(Dim::new(256), 0, OnlineTrainerKind::Lvq)
                .evaluate_loocv(&two)
                .is_err()
        );
    }
}
