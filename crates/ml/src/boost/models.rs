//! The three boosted-ensemble classifiers.

use super::binning::BinnedData;
use super::tree::{grow_tree, predict_raw, BoostedTree, GrowConfig, GrowthStrategy};
use super::{base_score, logistic_grad_hess};
use crate::error::MlError;
use crate::linalg::Matrix;
use crate::linear::sigmoid;
use crate::traits::{validate_fit_inputs, Estimator, ProbabilisticEstimator};
use serde::{Deserialize, Serialize};

/// XGBoost-style hyper-parameters (defaults match the Python library).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XgBoostParams {
    /// Boosting rounds (library default 100).
    pub n_estimators: usize,
    /// Shrinkage (library default 0.3).
    pub learning_rate: f64,
    /// Tree depth (library default 6).
    pub max_depth: usize,
    /// L2 leaf penalty (library default 1).
    pub lambda: f64,
    /// Minimum split gain (library default 0).
    pub gamma: f64,
    /// Minimum child hessian mass (library default 1).
    pub min_child_weight: f64,
    /// Histogram bins (library default 256).
    pub max_bins: usize,
}

impl Default for XgBoostParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            learning_rate: 0.3,
            max_depth: 6,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            max_bins: 256,
        }
    }
}

/// LightGBM-style hyper-parameters (defaults match the Python library).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LightGbmParams {
    /// Boosting rounds (library default 100).
    pub n_estimators: usize,
    /// Shrinkage (library default 0.1).
    pub learning_rate: f64,
    /// Leaf budget per tree (library default 31).
    pub num_leaves: usize,
    /// Minimum samples per leaf (library default 20).
    pub min_data_in_leaf: usize,
    /// L2 leaf penalty (library default 0).
    pub lambda: f64,
    /// Histogram bins (library default 255).
    pub max_bins: usize,
}

impl Default for LightGbmParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            learning_rate: 0.1,
            num_leaves: 31,
            min_data_in_leaf: 20,
            lambda: 0.0,
            max_bins: 255,
        }
    }
}

/// CatBoost-style hyper-parameters.
///
/// The real library defaults to 1000 iterations at learning-rate ≈ 0.03;
/// we default to 100 × 0.1 so one fit costs the same order of work as the
/// other two libraries, matching how the paper's referenced notebooks
/// configure it (see DESIGN.md §4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CatBoostParams {
    /// Boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage.
    pub learning_rate: f64,
    /// Oblivious-tree depth (library default 6).
    pub depth: usize,
    /// L2 leaf penalty (library default 3).
    pub l2_leaf_reg: f64,
    /// Histogram bins (library default 254).
    pub max_bins: usize,
}

impl Default for CatBoostParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            learning_rate: 0.1,
            depth: 6,
            l2_leaf_reg: 3.0,
            max_bins: 254,
        }
    }
}

/// Shared fitted state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Ensemble {
    trees: Vec<BoostedTree>,
    base: f64,
    n_features: usize,
}

impl Ensemble {
    fn fit(
        &mut self,
        x: &Matrix,
        y: &[usize],
        n_estimators: usize,
        max_bins: usize,
        cfg: &GrowConfig,
    ) -> Result<(), MlError> {
        if n_estimators == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_estimators",
                reason: "must be at least 1".into(),
            });
        }
        let n_classes = validate_fit_inputs(x, y)?;
        if n_classes > 2 {
            return Err(MlError::InvalidParameter {
                name: "y",
                reason: "boosted classifiers support binary labels only".into(),
            });
        }
        self.n_features = x.n_cols();
        self.base = base_score(y);
        let binned = BinnedData::fit(x, max_bins);
        let n = x.n_rows();
        let mut raw = vec![self.base; n];
        self.trees = Vec::with_capacity(n_estimators);
        let all_rows: Vec<u32> = (0..n as u32).collect();
        for _ in 0..n_estimators {
            let gh = logistic_grad_hess(&raw, y);
            let tree = grow_tree(&binned, &gh, all_rows.clone(), cfg);
            if tree.n_leaves() <= 1 {
                // No further structure to extract; keep the ensemble as-is.
                break;
            }
            for (i, r) in raw.iter_mut().enumerate() {
                *r += tree.predict_row(x.row(i));
            }
            self.trees.push(tree);
        }
        Ok(())
    }

    fn proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        if self.trees.is_empty() && self.n_features == 0 {
            return Err(MlError::NotFitted);
        }
        if x.n_cols() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: format!("{} features", self.n_features),
                got: format!("{} features", x.n_cols()),
            });
        }
        Ok(predict_raw(&self.trees, self.base, x)
            .iter()
            .map(|&z| sigmoid(z))
            .collect())
    }

    fn classes(&self, x: &Matrix) -> Result<Vec<usize>, MlError> {
        Ok(self
            .proba(x)?
            .iter()
            .map(|&p| usize::from(p >= 0.5))
            .collect())
    }
}

macro_rules! boosted_classifier {
    ($(#[$doc:meta])* $name:ident, $params:ty, $label:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
        pub struct $name {
            params: $params,
            ensemble: Ensemble,
        }

        impl $name {
            /// Creates an unfitted classifier.
            #[must_use]
            pub fn new(params: $params) -> Self {
                Self {
                    params,
                    ensemble: Ensemble::default(),
                }
            }

            /// Number of fitted trees.
            #[must_use]
            pub fn n_trees(&self) -> usize {
                self.ensemble.trees.len()
            }
        }

        impl Estimator for $name {
            fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<(), MlError> {
                let cfg = self.grow_config()?;
                self.ensemble.fit(
                    x,
                    y,
                    self.params.n_estimators,
                    self.params.max_bins,
                    &cfg,
                )
            }

            fn predict(&self, x: &Matrix) -> Result<Vec<usize>, MlError> {
                self.ensemble.classes(x)
            }

            fn name(&self) -> &'static str {
                $label
            }
        }

        impl ProbabilisticEstimator for $name {
            fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
                self.ensemble.proba(x)
            }
        }
    };
}

boosted_classifier!(
    /// Second-order, level-wise boosted trees (XGBoost signature).
    XgBoostClassifier,
    XgBoostParams,
    "XGBoost"
);

impl XgBoostClassifier {
    fn grow_config(&self) -> Result<GrowConfig, MlError> {
        check_lr(self.params.learning_rate)?;
        Ok(GrowConfig {
            strategy: GrowthStrategy::LevelWise {
                max_depth: self.params.max_depth,
            },
            lambda: self.params.lambda,
            gamma: self.params.gamma,
            min_child_weight: self.params.min_child_weight,
            min_samples_leaf: 1,
            learning_rate: self.params.learning_rate,
        })
    }
}

boosted_classifier!(
    /// Histogram leaf-wise boosted trees (LightGBM signature).
    LightGbmClassifier,
    LightGbmParams,
    "LGBM"
);

impl LightGbmClassifier {
    fn grow_config(&self) -> Result<GrowConfig, MlError> {
        check_lr(self.params.learning_rate)?;
        Ok(GrowConfig {
            strategy: GrowthStrategy::LeafWise {
                max_leaves: self.params.num_leaves.max(2),
            },
            lambda: self.params.lambda,
            gamma: 0.0,
            min_child_weight: 1e-3,
            min_samples_leaf: self.params.min_data_in_leaf,
            learning_rate: self.params.learning_rate,
        })
    }
}

boosted_classifier!(
    /// Oblivious-tree boosting (CatBoost signature).
    CatBoostClassifier,
    CatBoostParams,
    "CatBoost"
);

impl CatBoostClassifier {
    fn grow_config(&self) -> Result<GrowConfig, MlError> {
        check_lr(self.params.learning_rate)?;
        Ok(GrowConfig {
            strategy: GrowthStrategy::Oblivious {
                depth: self.params.depth,
            },
            lambda: self.params.l2_leaf_reg,
            gamma: 0.0,
            min_child_weight: 0.0,
            min_samples_leaf: 1,
            learning_rate: self.params.learning_rate,
        })
    }
}

fn check_lr(lr: f64) -> Result<(), MlError> {
    if lr <= 0.0 || !lr.is_finite() {
        return Err(MlError::InvalidParameter {
            name: "learning_rate",
            reason: "must be positive and finite".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes() -> (Matrix, Vec<usize>) {
        // Nonlinear striped pattern no single linear cut solves.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let v = i as f32;
            rows.push(vec![v, (i % 7) as f32]);
            y.push(usize::from((i / 10) % 2 == 1));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn small<Tp: SmallN>(n: usize) -> Tp {
        Tp::with_n(n)
    }

    trait SmallN: Default {
        fn with_n(n: usize) -> Self;
    }
    impl SmallN for XgBoostParams {
        fn with_n(n: usize) -> Self {
            Self {
                n_estimators: n,
                ..Self::default()
            }
        }
    }
    impl SmallN for LightGbmParams {
        fn with_n(n: usize) -> Self {
            Self {
                n_estimators: n,
                min_data_in_leaf: 1,
                ..Self::default()
            }
        }
    }
    impl SmallN for CatBoostParams {
        fn with_n(n: usize) -> Self {
            Self {
                n_estimators: n,
                ..Self::default()
            }
        }
    }

    #[test]
    fn xgboost_fits_stripes() {
        let (x, y) = stripes();
        let mut clf = XgBoostClassifier::new(small(30));
        clf.fit(&x, &y).unwrap();
        assert!(clf.accuracy(&x, &y).unwrap() > 0.95);
        assert!(clf.n_trees() >= 5);
    }

    #[test]
    fn lightgbm_fits_stripes() {
        let (x, y) = stripes();
        let mut clf = LightGbmClassifier::new(small(40));
        clf.fit(&x, &y).unwrap();
        assert!(clf.accuracy(&x, &y).unwrap() > 0.95);
    }

    #[test]
    fn catboost_fits_stripes() {
        let (x, y) = stripes();
        let mut clf = CatBoostClassifier::new(small(40));
        clf.fit(&x, &y).unwrap();
        assert!(clf.accuracy(&x, &y).unwrap() > 0.95);
    }

    #[test]
    fn probabilities_are_calibrated_toward_labels() {
        let (x, y) = stripes();
        let mut clf = XgBoostClassifier::new(small(30));
        clf.fit(&x, &y).unwrap();
        let p = clf.predict_proba(&x).unwrap();
        let mean_pos: f64 = p
            .iter()
            .zip(&y)
            .filter(|(_, &l)| l == 1)
            .map(|(&pi, _)| pi)
            .sum::<f64>()
            / y.iter().filter(|&&l| l == 1).count() as f64;
        let mean_neg: f64 = p
            .iter()
            .zip(&y)
            .filter(|(_, &l)| l == 0)
            .map(|(&pi, _)| pi)
            .sum::<f64>()
            / y.iter().filter(|&&l| l == 0).count() as f64;
        assert!(mean_pos > 0.8 && mean_neg < 0.2);
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let (x, y) = stripes();
        let mut short = XgBoostClassifier::new(XgBoostParams {
            n_estimators: 1,
            learning_rate: 0.1,
            ..XgBoostParams::default()
        });
        short.fit(&x, &y).unwrap();
        let mut long = XgBoostClassifier::new(XgBoostParams {
            n_estimators: 50,
            learning_rate: 0.1,
            ..XgBoostParams::default()
        });
        long.fit(&x, &y).unwrap();
        assert!(long.accuracy(&x, &y).unwrap() >= short.accuracy(&x, &y).unwrap());
    }

    #[test]
    fn invalid_params_rejected() {
        let (x, y) = stripes();
        let mut clf = XgBoostClassifier::new(XgBoostParams {
            n_estimators: 0,
            ..XgBoostParams::default()
        });
        assert!(clf.fit(&x, &y).is_err());
        let mut clf = LightGbmClassifier::new(LightGbmParams {
            learning_rate: -0.1,
            ..LightGbmParams::default()
        });
        assert!(matches!(
            clf.fit(&x, &y),
            Err(MlError::InvalidParameter {
                name: "learning_rate",
                ..
            })
        ));
    }

    #[test]
    fn unfitted_predict_errors() {
        let clf = CatBoostClassifier::new(CatBoostParams::default());
        assert!(clf.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn multiclass_rejected() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let mut clf = XgBoostClassifier::new(XgBoostParams::default());
        assert!(clf.fit(&x, &[0, 1, 2]).is_err());
    }

    #[test]
    fn feature_count_checked_at_predict() {
        let (x, y) = stripes();
        let mut clf = LightGbmClassifier::new(small(5));
        clf.fit(&x, &y).unwrap();
        assert!(clf.predict(&Matrix::zeros(1, 9)).is_err());
    }
}
