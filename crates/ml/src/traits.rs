//! Estimator traits shared by every classifier in the substrate.

use crate::error::MlError;
use crate::linalg::Matrix;
use hyperfex_hdc::bitmatrix::BitMatrix;

/// Input features for fitting or prediction: either a dense `f32` design
/// matrix or a packed binary one (hypervector rows, one bit per cell).
///
/// Models with word-level fast paths ([`crate::knn::KnnClassifier`],
/// [`crate::tree::DecisionTreeClassifier`], [`crate::svm::SvcClassifier`],
/// [`crate::linear::LogisticRegression`], [`crate::linear::SgdClassifier`])
/// override [`Estimator::fit_features`]/[`Estimator::predict_features`] to
/// consume the packed form directly; everything else densifies and falls
/// back to the `f32` path.
#[derive(Clone, Copy, Debug)]
pub enum Features<'a> {
    /// Dense row-major `f32` design matrix.
    Dense(&'a Matrix),
    /// Bit-packed binary design matrix.
    Packed(&'a BitMatrix),
}

impl Features<'_> {
    /// Number of samples.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        match self {
            Self::Dense(m) => m.n_rows(),
            Self::Packed(b) => b.n_rows(),
        }
    }

    /// Number of feature columns.
    #[must_use]
    pub fn n_cols(&self) -> usize {
        match self {
            Self::Dense(m) => m.n_cols(),
            Self::Packed(b) => b.dim().get(),
        }
    }

    /// An owned dense matrix: a clone when already dense, a 0.0/1.0
    /// unpack when packed.
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        match self {
            Self::Dense(m) => (*m).clone(),
            Self::Packed(b) => densify(b),
        }
    }
}

/// Unpacks a packed binary matrix into a dense 0.0/1.0 `f32` matrix
/// (the fallback bridge for models without a packed fast path).
#[must_use]
pub fn densify(b: &BitMatrix) -> Matrix {
    let d = b.dim().get();
    let mut m = Matrix::zeros(b.n_rows(), d);
    for (r, row) in (0..b.n_rows()).zip(m.as_mut_slice().chunks_mut(d.max(1))) {
        let words = b.row_words(r);
        for (w, chunk) in row.chunks_mut(64).enumerate() {
            let word = words[w];
            for (j, cell) in chunk.iter_mut().enumerate() {
                *cell = ((word >> j) & 1) as f32;
            }
        }
    }
    m
}

/// A supervised classifier over dense feature matrices.
///
/// Labels are class indices (`0..n_classes`); the paper's tasks are binary
/// (`0` = non-diabetic, `1` = diabetic). The trait is object-safe so
/// experiment runners can hold heterogeneous model zoos as
/// `Vec<Box<dyn Estimator>>`.
pub trait Estimator: Send + Sync {
    /// Fits the model to a design matrix and aligned labels.
    fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<(), MlError>;

    /// Predicts a class per row.
    fn predict(&self, x: &Matrix) -> Result<Vec<usize>, MlError>;

    /// A short human-readable model name ("Random Forest", …).
    fn name(&self) -> &'static str;

    /// Fits from either feature representation. The default densifies
    /// packed input and delegates to [`Estimator::fit`]; models with
    /// word-level kernels override this to stay in packed form.
    fn fit_features(&mut self, x: &Features<'_>, y: &[usize]) -> Result<(), MlError> {
        match x {
            Features::Dense(m) => self.fit(m, y),
            Features::Packed(b) => self.fit(&densify(b), y),
        }
    }

    /// Predicts from either feature representation (default: densify and
    /// delegate to [`Estimator::predict`]).
    fn predict_features(&self, x: &Features<'_>) -> Result<Vec<usize>, MlError> {
        match x {
            Features::Dense(m) => self.predict(m),
            Features::Packed(b) => self.predict(&densify(b)),
        }
    }

    /// Incrementally updates the model with a mini-batch, preserving prior
    /// learned state (the add-a-patient-online scenario). The default
    /// returns [`MlError::PartialFitUnsupported`] — deliberately *not* a
    /// silent refit, which would discard everything learned so far. Online
    /// models ([`crate::online::OnlineHdcClassifier`]) override this; they
    /// also accept a cold start, bootstrapping from the first mini-batch.
    fn partial_fit(&mut self, x: &Matrix, y: &[usize]) -> Result<(), MlError> {
        let _ = (x, y);
        Err(MlError::PartialFitUnsupported { model: self.name() })
    }

    /// [`Estimator::partial_fit`] from either feature representation
    /// (default: densify packed input and delegate).
    fn partial_fit_features(&mut self, x: &Features<'_>, y: &[usize]) -> Result<(), MlError> {
        match x {
            Features::Dense(m) => self.partial_fit(m, y),
            Features::Packed(b) => self.partial_fit(&densify(b), y),
        }
    }

    /// Fraction of rows whose predicted class equals `y`.
    fn accuracy(&self, x: &Matrix, y: &[usize]) -> Result<f64, MlError> {
        let predictions = self.predict(x)?;
        if predictions.len() != y.len() {
            return Err(MlError::LabelLengthMismatch {
                rows: predictions.len(),
                labels: y.len(),
            });
        }
        if y.is_empty() {
            return Ok(0.0);
        }
        let correct = predictions.iter().zip(y).filter(|(p, t)| p == t).count();
        Ok(correct as f64 / y.len() as f64)
    }
}

/// A classifier that can score the positive class.
pub trait ProbabilisticEstimator: Estimator {
    /// Probability (or calibrated score in `[0, 1]`) of class 1 per row.
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError>;
}

/// Validates the common preconditions every `fit` shares; returns the
/// number of classes.
pub(crate) fn validate_fit_inputs(x: &Matrix, y: &[usize]) -> Result<usize, MlError> {
    crate::obs::counter_add("ml/fits", 1);
    if x.n_rows() == 0 || x.n_cols() == 0 {
        return Err(MlError::EmptyTrainingSet);
    }
    if x.n_rows() != y.len() {
        return Err(MlError::LabelLengthMismatch {
            rows: x.n_rows(),
            labels: y.len(),
        });
    }
    x.check_finite()?;
    let n_classes = y.iter().copied().max().unwrap_or(0) + 1;
    // At least two classes must actually appear.
    let first = y[0];
    if y.iter().all(|&l| l == first) {
        return Err(MlError::SingleClass);
    }
    Ok(n_classes)
}

/// Validates a `partial_fit` mini-batch; returns the number of classes
/// *referenced by this batch* (`max label + 1`).
///
/// Deliberately relaxed compared to [`validate_fit_inputs`]: a streaming
/// mini-batch may legitimately contain a single class (or even a single
/// record), so the `SingleClass` check does not apply — class coverage is
/// a property of the whole stream, not of any one window of it.
pub(crate) fn validate_partial_fit_inputs(x: &Matrix, y: &[usize]) -> Result<usize, MlError> {
    crate::obs::counter_add("ml/partial_fits", 1);
    if x.n_rows() == 0 || x.n_cols() == 0 {
        return Err(MlError::EmptyTrainingSet);
    }
    if x.n_rows() != y.len() {
        return Err(MlError::LabelLengthMismatch {
            rows: x.n_rows(),
            labels: y.len(),
        });
    }
    x.check_finite()?;
    Ok(y.iter().copied().max().unwrap_or(0) + 1)
}

/// Packed-input analogue of [`validate_partial_fit_inputs`].
pub(crate) fn validate_packed_partial_fit_inputs(
    x: &BitMatrix,
    y: &[usize],
) -> Result<usize, MlError> {
    crate::obs::counter_add("ml/partial_fits", 1);
    if x.n_rows() == 0 {
        return Err(MlError::EmptyTrainingSet);
    }
    if x.n_rows() != y.len() {
        return Err(MlError::LabelLengthMismatch {
            rows: x.n_rows(),
            labels: y.len(),
        });
    }
    Ok(y.iter().copied().max().unwrap_or(0) + 1)
}

/// Packed-input analogue of [`validate_fit_inputs`]: same checks minus
/// finiteness, which holds trivially for bits.
pub(crate) fn validate_packed_fit_inputs(x: &BitMatrix, y: &[usize]) -> Result<usize, MlError> {
    crate::obs::counter_add("ml/fits", 1);
    if x.n_rows() == 0 {
        return Err(MlError::EmptyTrainingSet);
    }
    if x.n_rows() != y.len() {
        return Err(MlError::LabelLengthMismatch {
            rows: x.n_rows(),
            labels: y.len(),
        });
    }
    let n_classes = y.iter().copied().max().unwrap_or(0) + 1;
    let first = y[0];
    if y.iter().all(|&l| l == first) {
        return Err(MlError::SingleClass);
    }
    Ok(n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(usize);

    impl Estimator for Constant {
        fn fit(&mut self, _x: &Matrix, _y: &[usize]) -> Result<(), MlError> {
            Ok(())
        }
        fn predict(&self, x: &Matrix) -> Result<Vec<usize>, MlError> {
            Ok(vec![self.0; x.n_rows()])
        }
        fn name(&self) -> &'static str {
            "Constant"
        }
    }

    #[test]
    fn default_accuracy_counts_matches() {
        let clf = Constant(1);
        let x = Matrix::zeros(4, 1);
        assert_eq!(clf.accuracy(&x, &[1, 1, 0, 1]).unwrap(), 0.75);
        assert_eq!(clf.accuracy(&x, &[0, 0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn accuracy_checks_lengths() {
        let clf = Constant(0);
        let x = Matrix::zeros(2, 1);
        assert!(clf.accuracy(&x, &[0]).is_err());
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let x = Matrix::zeros(0, 3);
        assert_eq!(validate_fit_inputs(&x, &[]), Err(MlError::EmptyTrainingSet));
        let x = Matrix::zeros(2, 2);
        assert!(matches!(
            validate_fit_inputs(&x, &[0]),
            Err(MlError::LabelLengthMismatch { .. })
        ));
        assert_eq!(validate_fit_inputs(&x, &[0, 0]), Err(MlError::SingleClass));
        assert_eq!(validate_fit_inputs(&x, &[0, 1]), Ok(2));
        let mut bad = Matrix::zeros(2, 2);
        bad.set(0, 1, f32::INFINITY);
        assert!(matches!(
            validate_fit_inputs(&bad, &[0, 1]),
            Err(MlError::NonFiniteInput { .. })
        ));
    }
}
