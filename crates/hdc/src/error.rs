//! Error type shared by all fallible operations in this crate.

use std::fmt;

/// Errors produced by hypervector construction, encoding and classification.
#[derive(Debug, Clone, PartialEq)]
pub enum HdcError {
    /// Two hypervectors participating in a binary operation had different
    /// dimensionalities.
    DimensionMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// A dimensionality of zero was requested.
    ZeroDimension,
    /// An encoder was constructed with an empty or inverted value range.
    InvalidRange {
        /// Lower bound supplied.
        min: f64,
        /// Upper bound supplied.
        max: f64,
    },
    /// A non-finite value (NaN or infinity) was supplied where a finite
    /// value is required.
    NonFiniteValue,
    /// An operation that requires at least one input received none.
    EmptyInput,
    /// A record encoder was given a value vector whose length does not match
    /// its schema.
    ArityMismatch {
        /// Number of features the schema defines.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A classifier was asked to predict before being fitted, or fitted with
    /// inconsistent inputs.
    NotFitted,
    /// Labels and samples had different lengths.
    LabelLengthMismatch {
        /// Number of samples.
        samples: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label referenced a class the classifier has never seen — e.g. a
    /// retrain set containing a class absent at `fit` time.
    UnknownLabel {
        /// The offending label.
        label: usize,
        /// Number of classes the classifier currently knows.
        classes: usize,
    },
    /// A component was configured with an invalid parameter.
    InvalidConfig(String),
    /// A fault-injection failpoint forced this operation to fail. Only
    /// produced when the `fault-injection` feature is enabled and a chaos
    /// handler is installed; never occurs in production builds.
    Injected {
        /// The failpoint that fired (e.g. `hdc/encode_batch`).
        point: String,
    },
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { left, right } => {
                write!(f, "hypervector dimension mismatch: {left} vs {right}")
            }
            Self::ZeroDimension => write!(f, "hypervector dimensionality must be non-zero"),
            Self::InvalidRange { min, max } => {
                write!(f, "invalid encoder range: min {min} must be < max {max}")
            }
            Self::NonFiniteValue => write!(f, "value must be finite"),
            Self::EmptyInput => write!(f, "operation requires at least one input"),
            Self::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "record has {got} values but schema defines {expected} features"
                )
            }
            Self::NotFitted => write!(f, "classifier has not been fitted"),
            Self::LabelLengthMismatch { samples, labels } => {
                write!(f, "{samples} samples but {labels} labels")
            }
            Self::UnknownLabel { label, classes } => {
                write!(
                    f,
                    "label {label} references an unknown class (classifier knows {classes})"
                )
            }
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Injected { point } => {
                write!(f, "injected fault fired at failpoint `{point}`")
            }
        }
    }
}

impl std::error::Error for HdcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = HdcError::DimensionMismatch {
            left: 64,
            right: 128,
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("128"));
        let e = HdcError::InvalidRange { min: 3.0, max: 1.0 };
        assert!(e.to_string().contains('3'));
        assert!(HdcError::ZeroDimension.to_string().contains("non-zero"));
        assert!(HdcError::NotFitted.to_string().contains("fitted"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&HdcError::EmptyInput);
    }
}
