//! Criterion benches live in benches/; see DESIGN.md for the table they back.
