//! Categorical (orthogonal) encoding of discrete features.

use crate::binary::{BinaryHypervector, Dim};
use crate::error::HdcError;
use crate::rng::SplitMix64;

/// Encoder mapping each of `n` categories to a quasi-orthogonal hypervector.
///
/// Category 0 is a random exactly-balanced seed vector; each further
/// category is produced by "flipping an equal number of 1's and 0's chosen
/// randomly" (paper §II-B) — `⌊d/4⌋` of each, so every category pair differs
/// in ≈ `d/2` bits and the codes are mutually quasi-orthogonal. With `n = 2`
/// this is exactly the paper's yes/no encoding for the Sylhet symptom
/// features.
#[derive(Debug, Clone)]
pub struct CategoricalEncoder {
    codes: Vec<BinaryHypervector>,
}

impl CategoricalEncoder {
    /// Creates an encoder for `n_categories ≥ 1` categories.
    pub fn new(dim: Dim, n_categories: usize, seed: u64) -> Result<Self, HdcError> {
        if n_categories == 0 {
            return Err(HdcError::EmptyInput);
        }
        let root = SplitMix64::new(seed);
        let mut seed_rng = root.derive(0, 0);
        let base = BinaryHypervector::random_balanced(dim, &mut seed_rng);
        let quarter = dim.get() / 4;
        let mut codes = Vec::with_capacity(n_categories);
        codes.push(base.clone());
        for c in 1..n_categories {
            let mut rng = root.derive(1, c as u64);
            // Quarter flips always fit a balanced vector (⌊d/4⌋ ≤ ⌊d/2⌋
            // ones and zeros), so this propagates instead of panicking
            // purely for the typed-error contract.
            let code = base.flip_balanced(quarter, &mut rng)?;
            codes.push(code);
        }
        Ok(Self { codes })
    }

    /// A binary yes/no encoder (two categories), as used for the Sylhet
    /// symptom features.
    pub fn binary(dim: Dim, seed: u64) -> Result<Self, HdcError> {
        Self::new(dim, 2, seed)
    }

    /// Number of categories.
    #[must_use]
    pub fn n_categories(&self) -> usize {
        self.codes.len()
    }

    /// The output dimensionality.
    #[must_use]
    pub fn dim(&self) -> Dim {
        self.codes[0].dim()
    }

    /// The code for `category`.
    ///
    /// Returns an error if `category ≥ n_categories` — categorical features
    /// have no meaningful clamping, unlike continuous ones.
    pub fn encode(&self, category: usize) -> Result<BinaryHypervector, HdcError> {
        self.codes
            .get(category)
            .cloned()
            .ok_or(HdcError::ArityMismatch {
                expected: self.codes.len(),
                got: category + 1,
            })
    }

    /// Borrowing accessor (no clone), for read-only comparisons.
    #[must_use]
    pub fn code(&self, category: usize) -> Option<&BinaryHypervector> {
        self.codes.get(category)
    }

    /// Remaps this encoder onto the bits retained by `selection` by
    /// gathering every category code:
    /// `pruned.encode(c) == selection.gather(self.encode(c))` bit-exactly.
    pub fn prune(&self, selection: &crate::distill::BitSelection) -> Result<Self, HdcError> {
        let codes = self
            .codes
            .iter()
            .map(|c| selection.gather_hypervector(c))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { codes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_categories_rejected() {
        assert!(CategoricalEncoder::new(Dim::PAPER, 0, 1).is_err());
    }

    #[test]
    fn binary_codes_are_orthogonal_and_balanced() {
        let e = CategoricalEncoder::binary(Dim::PAPER, 99).unwrap();
        let no = e.encode(0).unwrap();
        let yes = e.encode(1).unwrap();
        assert_eq!(no.try_hamming(&yes).unwrap(), Dim::PAPER.get() / 2);
        assert_eq!(no.count_ones(), 5_000);
        assert_eq!(yes.count_ones(), 5_000);
    }

    #[test]
    fn many_categories_are_pairwise_quasi_orthogonal() {
        let e = CategoricalEncoder::new(Dim::PAPER, 6, 5).unwrap();
        for a in 0..6 {
            for b in (a + 1)..6 {
                let d = e.code(a).unwrap().try_hamming(e.code(b).unwrap()).unwrap();
                assert!(
                    (4_300..=5_700).contains(&d),
                    "categories {a},{b} distance {d} not quasi-orthogonal"
                );
            }
        }
    }

    #[test]
    fn out_of_range_category_errors() {
        let e = CategoricalEncoder::binary(Dim::new(64), 1).unwrap();
        assert!(e.encode(2).is_err());
        assert!(e.code(2).is_none());
        assert_eq!(e.n_categories(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CategoricalEncoder::binary(Dim::new(512), 42).unwrap();
        let b = CategoricalEncoder::binary(Dim::new(512), 42).unwrap();
        let c = CategoricalEncoder::binary(Dim::new(512), 43).unwrap();
        assert_eq!(a.encode(1).unwrap(), b.encode(1).unwrap());
        assert_ne!(a.encode(1).unwrap(), c.encode(1).unwrap());
    }
}
