//! Offline vendored subset of the `rand` 0.10 API.
//!
//! The build container has no network access, so the workspace vendors the
//! small slice of `rand` it actually uses: the `TryRng`/`Rng` core traits,
//! `SeedableRng`, a deterministic `StdRng`, uniform `random_range` sampling
//! over integer and float ranges (`RngExt`), and Fisher–Yates shuffling
//! (`seq::SliceRandom`). Streams are deterministic per seed but are not
//! guaranteed to match upstream `rand` bit-for-bit.

pub mod rand_core {
    /// A fallible random number generator.
    ///
    /// Implementing this with an infallible error type grants the blanket
    /// [`crate::Rng`] impl, mirroring the upstream design.
    pub trait TryRng {
        /// Error produced by the generator.
        type Error: core::fmt::Debug;

        /// Next 32 uniformly random bits.
        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;
        /// Next 64 uniformly random bits.
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;
        /// Fills `dest` with random bytes.
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
    }
}

/// An infallible random number generator.
pub trait Rng {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<T: rand_core::TryRng> Rng for T {
    fn next_u32(&mut self) -> u32 {
        self.try_next_u32().expect("infallible rng failed")
    }

    fn next_u64(&mut self) -> u64 {
        self.try_next_u64().expect("infallible rng failed")
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.try_fill_bytes(dest).expect("infallible rng failed")
    }
}

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws a uniform sample in `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

#[inline]
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Lemire's multiply-shift rejection method; unbiased.
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        let low = m as u64;
        if low >= bound || low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        // 53 random mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + unit * (high - low);
        // Floating rounding can land exactly on `high`; clamp back inside.
        if v < high {
            v
        } else {
            low
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, f64::from(low), f64::from(high)) as f32
    }
}

/// A range random values can be drawn from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

/// Extension methods on [`Rng`] (upstream `rand::Rng`'s sampling half).
pub trait RngExt: Rng {
    /// Draws a uniform sample from `range`.
    #[inline]
    fn random_range<T, Rge>(&mut self, range: Rge) -> T
    where
        T: SampleUniform,
        Rge: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

pub mod rngs {
    use super::{rand_core, SeedableRng};

    /// The standard deterministic generator (SplitMix64-based here; upstream
    /// uses ChaCha12 — streams differ but determinism per seed holds).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        #[inline]
        fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = Self { state: seed };
            // Burn one output so nearby seeds diverge immediately.
            rng.next();
            Self { state: rng.next() }
        }
    }

    impl rand_core::TryRng for StdRng {
        type Error = core::convert::Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Self::Error> {
            Ok((self.next() >> 32) as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Self::Error> {
            Ok(self.next())
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error> {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
            Ok(())
        }
    }
}

pub mod seq {
    use super::{bounded_u64, Rng};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let i = rng.random_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.random_range(-2.0..4.0f64);
            assert!((-2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
