//! Property-based tests for the token-stream lexer the lint rules sit on.
//!
//! Two families of guarantee, both load-bearing for every rule:
//!
//! 1. **Round-trip**: `lex` partitions the source into contiguous tokens
//!    whose concatenation reproduces the input byte-for-byte, for *any*
//!    input — arbitrary character salad as well as generated Rust-like
//!    token soup. A lexer that drops or duplicates a byte mis-reports
//!    every line number after the defect.
//! 2. **Literal opacity**: rule patterns (`unwrap(`, `as u32`, `scope(`,
//!    `Ordering::Relaxed`, …) embedded inside string literals, raw strings
//!    or comments never surface as matchable tokens, and `stripped_text`
//!    blanks them while preserving byte length and newline positions.

use proptest::prelude::*;
use xtask::lex::{lex, reconstruct, stripped_text, TokenKind};

/// Patterns the rule families scan for; none may leak out of a literal.
const RULE_PATTERNS: &[&str] = &[
    "unwrap(",
    "expect(",
    "panic!(",
    "as u32",
    "as usize",
    "scope(",
    "Ordering::Relaxed",
    "failpoint::check(",
];

/// Character salad alphabet: every lexer state-machine trigger (quotes,
/// backslashes, comment markers, `r#`), plus multi-byte characters so
/// byte/char-boundary confusion would be caught.
const SALAD: &[char] = &[
    'a', 'Z', '_', '0', '9', ' ', '\n', '\t', '"', '\'', '\\', '/', '*', '#', 'r', 'b', '(', ')',
    '{', '}', '!', '?', '-', '=', '<', '>', '.', ':', ';', 'é', '日', '🦀',
];

fn salad_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0..SALAD.len(), 0..64)
        .prop_map(|ix| ix.into_iter().map(|i| SALAD[i]).collect())
}

/// Deterministically expands a `(selector, seed)` pair into one Rust-like
/// token fragment. Fragments are self-contained: joined with spaces they
/// form a lexable token run.
fn fragment(selector: usize, seed: u64) -> String {
    let letter = |s: u64| char::from(b'a' + (s % 26) as u8);
    let word = |s: u64| {
        (0..=(s % 5))
            .map(|k| letter(s.wrapping_mul(31).wrapping_add(k)))
            .collect::<String>()
    };
    const PUNCT: &[&str] = &[
        "::", "->", "=>", "+=", "<<=", ">>=", "&&", "||", "..=", "(", ")", "{", "}", "[", "]", ";",
        ",", ".", "&", "|", "^", "+", "-", "*", "<", ">", "=", "?", "#", "!",
    ];
    match selector {
        0 => word(seed),
        1 => format!("r#{}", word(seed)),
        2 => format!("'{}", word(seed)),
        3 => format!("{}", seed % 100_000),
        4 => format!("{}u32", seed % 1_000),
        5 => format!("{}.{}f64", seed % 100, seed % 10),
        6 => format!("\"{} {}\\n\"", word(seed), word(seed / 7)),
        7 => format!("r#\"{} ({})\"#", word(seed), word(seed / 3)),
        8 => format!("'{}'", letter(seed)),
        9 => "'\\''".to_string(),
        10 => format!("// {}\n", word(seed)),
        11 => format!("/* {} */", word(seed)),
        12 => format!("/* a /* {} */ b */", word(seed)),
        _ => PUNCT[seed as usize % PUNCT.len()].to_string(),
    }
}

/// Rust-like source: fragments joined by spaces, newline-terminated.
fn token_soup() -> impl Strategy<Value = String> {
    prop::collection::vec((0..14usize, 0..u64::MAX), 0..32).prop_map(|frags| {
        let mut s = frags
            .into_iter()
            .map(|(sel, seed)| fragment(sel, seed))
            .collect::<Vec<_>>()
            .join(" ");
        s.push('\n');
        s
    })
}

/// Wraps rule pattern `p` (chosen by `pat`) in an opaque container
/// (chosen by `container`), returning the wrapped line and the pattern.
fn hide(pat: usize, container: usize) -> (String, &'static str) {
    let p = RULE_PATTERNS[pat % RULE_PATTERNS.len()];
    let wrapped = match container % 5 {
        0 => format!("let s = \"x {p} y\";\n"),
        1 => format!("let s = r#\"x {p} y\"#;\n"),
        2 => format!("// seen {p} in a comment\n"),
        3 => format!("let x = 1; /* {p} */\n"),
        _ => format!("/* outer /* {p} */ tail */\n"),
    };
    (wrapped, p)
}

proptest! {
    /// Any character salad lexes into a contiguous partition that
    /// reconstructs the input exactly.
    #[test]
    fn round_trip_arbitrary_input(src in salad_string()) {
        let tokens = lex(&src);
        prop_assert_eq!(reconstruct(&src, &tokens), src.clone());
        let mut offset = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, offset, "tokens must be contiguous");
            prop_assert!(t.end > t.start, "tokens must be non-empty");
            offset = t.end;
        }
        prop_assert_eq!(offset, src.len(), "tokens must cover every byte");
    }

    /// Rust-like token soup round-trips, and stripping preserves the byte
    /// length and every newline position (line arithmetic is unchanged).
    #[test]
    fn round_trip_and_stripping_preserve_geometry(src in token_soup()) {
        let tokens = lex(&src);
        prop_assert_eq!(reconstruct(&src, &tokens), src.clone());
        let stripped = stripped_text(&src, &tokens);
        prop_assert_eq!(stripped.len(), src.len());
        let src_newlines: Vec<usize> =
            src.bytes().enumerate().filter(|&(_, b)| b == b'\n').map(|(i, _)| i).collect();
        let out_newlines: Vec<usize> =
            stripped.bytes().enumerate().filter(|&(_, b)| b == b'\n').map(|(i, _)| i).collect();
        prop_assert_eq!(src_newlines, out_newlines);
    }

    /// A rule pattern inside a string, raw string or comment produces zero
    /// matchable tokens: nothing non-literal overlaps the pattern bytes,
    /// and the stripped text no longer contains them.
    #[test]
    fn patterns_inside_literals_are_invisible(
        prefix in token_soup(),
        pat in 0..RULE_PATTERNS.len(),
        container in 0..5usize,
        suffix in token_soup(),
    ) {
        let (hidden, pattern) = hide(pat, container);
        let src = format!("{prefix}{hidden}{suffix}");
        let tokens = lex(&src);
        prop_assert_eq!(reconstruct(&src, &tokens), src.clone());

        // Where does the injected pattern live? `hidden` contains it once.
        let inner = hidden.find(pattern).expect("container embeds the pattern");
        let (pat_start, pat_end) = (prefix.len() + inner, prefix.len() + inner + pattern.len());

        for t in &tokens {
            let overlaps = t.start < pat_end && pat_start < t.end;
            if overlaps {
                prop_assert!(
                    matches!(
                        t.kind,
                        TokenKind::Str
                            | TokenKind::RawStr
                            | TokenKind::LineComment
                            | TokenKind::BlockComment
                    ),
                    "pattern bytes leaked into a {:?} token: {:?}",
                    t.kind,
                    t.text(&src)
                );
            }
        }
        let stripped = stripped_text(&src, &tokens);
        prop_assert!(
            !stripped[pat_start..pat_end].contains(pattern),
            "stripped text still contains the hidden pattern"
        );
    }
}
