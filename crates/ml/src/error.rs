//! Error type for model construction, fitting and prediction.

use std::fmt;

/// Errors produced by the ML substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Matrix construction from inconsistent row lengths, or an operand
    /// shape that does not match.
    ShapeMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the shape that was supplied.
        got: String,
    },
    /// A training set with zero rows (or zero features) was supplied.
    EmptyTrainingSet,
    /// Labels and rows have different lengths.
    LabelLengthMismatch {
        /// Number of rows in the design matrix.
        rows: usize,
        /// Number of labels supplied.
        labels: usize,
    },
    /// Predict was called before fit.
    NotFitted,
    /// A hyper-parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint violation.
        reason: String,
    },
    /// A non-finite value was encountered in the input data.
    NonFiniteInput {
        /// Row index of the offending value.
        row: usize,
        /// Column index of the offending value.
        col: usize,
    },
    /// Training requires at least one example of each of two classes.
    SingleClass,
    /// The model cannot learn incrementally: `partial_fit` was called on an
    /// estimator without online-update support.
    PartialFitUnsupported {
        /// Name of the model that rejected the call.
        model: &'static str,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            Self::EmptyTrainingSet => write!(f, "training set is empty"),
            Self::LabelLengthMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
            Self::NotFitted => write!(f, "model has not been fitted"),
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Self::NonFiniteInput { row, col } => {
                write!(f, "non-finite value at row {row}, column {col}")
            }
            Self::SingleClass => {
                write!(
                    f,
                    "training data contains a single class; need at least two"
                )
            }
            Self::PartialFitUnsupported { model } => {
                write!(
                    f,
                    "{model} does not support incremental (partial_fit) updates"
                )
            }
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_details() {
        let e = MlError::LabelLengthMismatch {
            rows: 10,
            labels: 8,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('8'));
        let e = MlError::InvalidParameter {
            name: "k",
            reason: "must be > 0".into(),
        };
        assert!(e.to_string().contains("`k`"));
        let e = MlError::NonFiniteInput { row: 3, col: 4 };
        assert!(e.to_string().contains("row 3"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error>(_: &E) {}
        check(&MlError::NotFitted);
    }
}
