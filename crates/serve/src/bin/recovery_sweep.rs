//! Recovery sweep: serving accuracy as shards are progressively destroyed.
//!
//! Builds an 8-shard store over a synthetic two-class cohort, then for
//! `k = 0..=8` destroys `k` shard files and reopens: the report must
//! quarantine exactly `k` shards, and the sweep records the probe accuracy
//! the survivors still deliver. The holographic claim under test: accuracy
//! degrades gracefully with surviving capacity instead of collapsing at
//! the first lost shard.
//!
//! Writes `reports/recovery.json` and `reports/recovery.txt` relative to
//! the working directory (override the directory with `--out-dir PATH`).

use std::path::PathBuf;
use std::process::exit;

use hyperfex_hdc::binary::Dim;
use hyperfex_hdc::rng::SplitMix64;
use hyperfex_serve::{HvStore, ServeError, SyntheticCohort};

const N_SHARDS: usize = 8;
const N_RECORDS: usize = 400;
const N_PROBES: usize = 200;
const DIM: usize = 2048;

struct SweepRow {
    destroyed: usize,
    kept: usize,
    surviving_rows: usize,
    accuracy: f64,
}

fn main() {
    let mut out_dir = PathBuf::from("reports");
    let mut seed = 7u64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args.get(i).map(String::as_str) {
            Some("--seed") => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a number");
                        exit(2);
                    });
                i += 1;
            }
            Some("--out-dir") => {
                out_dir = PathBuf::from(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--out-dir needs a path");
                    exit(2);
                }));
                i += 1;
            }
            Some("--help" | "-h") => {
                println!("usage: recovery_sweep [--seed N] [--out-dir PATH]");
                exit(0);
            }
            Some(other) => {
                eprintln!("unknown flag `{other}` (try --help)");
                exit(2);
            }
            None => break,
        }
        i += 1;
    }

    let rows = match run(seed) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("recovery_sweep failed: {e}");
            exit(1);
        }
    };
    if let Err(e) = write_reports(&out_dir, seed, &rows) {
        eprintln!("recovery_sweep failed: {e}");
        exit(1);
    }
}

fn run(seed: u64) -> Result<Vec<SweepRow>, ServeError> {
    let dim = Dim::try_new(DIM)?;
    let cohort = SyntheticCohort::generate(dim, 2, N_RECORDS, DIM / 8, seed)?;
    let mut store = HvStore::build(&cohort.records, &cohort.labels, N_SHARDS)?;

    let base = std::env::temp_dir().join(format!("hyperfex-recovery-sweep-{}", std::process::id()));
    let mut rows = Vec::with_capacity(N_SHARDS + 1);
    for destroyed in 0..=N_SHARDS {
        let dir = base.join(format!("k{destroyed}"));
        drop(std::fs::remove_dir_all(&dir));
        store.save(&dir)?;
        let paths = HvStore::shard_paths(&dir)?;
        for path in paths.iter().take(destroyed) {
            std::fs::write(path, b"destroyed").map_err(|e| ServeError::io(path, &e))?;
        }

        let (recovered, report) = HvStore::open(&dir)?;
        if report.quarantined.len() != destroyed || !report.is_complete() {
            return Err(ServeError::ShardConflict {
                detail: format!(
                    "destroyed {destroyed} shards but the report quarantined {} of {}",
                    report.quarantined.len(),
                    report.total_shards
                ),
            });
        }

        let mut rng = SplitMix64::new(seed).derive(0x5EE9, destroyed as u64);
        let mut correct = 0usize;
        if recovered.n_rows() > 0 {
            for p in 0..N_PROBES {
                let class = p % 2;
                let proto = cohort
                    .prototypes
                    .get(class)
                    .ok_or(ServeError::NoSurvivors)?;
                let probe = proto.flip_balanced(DIM / 8, &mut rng)?;
                if recovered.predict_batch(&[probe], 5)? == vec![class] {
                    correct += 1;
                }
            }
        }
        rows.push(SweepRow {
            destroyed,
            kept: report.kept.len(),
            surviving_rows: recovered.n_rows(),
            accuracy: correct as f64 / N_PROBES as f64,
        });
        drop(std::fs::remove_dir_all(&dir));
    }
    drop(std::fs::remove_dir_all(&base));
    Ok(rows)
}

fn write_reports(out_dir: &PathBuf, seed: u64, rows: &[SweepRow]) -> Result<(), ServeError> {
    std::fs::create_dir_all(out_dir).map_err(|e| ServeError::io(out_dir, &e))?;

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"dim\": {DIM},\n  \"shards\": {N_SHARDS},\n  \"records\": {N_RECORDS},\n  \
         \"probes\": {N_PROBES},\n  \"seed\": {seed},\n  \"sweep\": [\n"
    ));
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"destroyed\": {}, \"kept\": {}, \"surviving_rows\": {}, \
             \"accuracy\": {:.4}}}{comma}\n",
            row.destroyed, row.kept, row.surviving_rows, row.accuracy
        ));
    }
    json.push_str("  ]\n}\n");
    let json_path = out_dir.join("recovery.json");
    std::fs::write(&json_path, &json).map_err(|e| ServeError::io(&json_path, &e))?;

    let mut txt = String::new();
    txt.push_str(&format!(
        "Recovery sweep: {N_RECORDS} records, {N_SHARDS} shards, dim {DIM}, seed {seed}\n"
    ));
    txt.push_str(&format!(
        "{:>9}  {:>4}  {:>14}  {:>8}\n",
        "destroyed", "kept", "surviving_rows", "accuracy"
    ));
    for row in rows {
        txt.push_str(&format!(
            "{:>9}  {:>4}  {:>14}  {:>8.4}\n",
            row.destroyed, row.kept, row.surviving_rows, row.accuracy
        ));
    }
    let txt_path = out_dir.join("recovery.txt");
    std::fs::write(&txt_path, &txt).map_err(|e| ServeError::io(&txt_path, &e))?;

    println!("{txt}");
    println!("(written to {})", out_dir.display());
    Ok(())
}
