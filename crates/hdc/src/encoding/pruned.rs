//! Pruned linear encoding: a [`LinearEncoder`] remapped into a distilled
//! bit space, so new records encode directly at the pruned dimensionality
//! without a full-width detour.
//!
//! # Remap semantics
//!
//! A [`BitSelection`] keeps `k` of the original `d` bit positions. The
//! pruned encoder gathers the seed hypervector once at construction and
//! rewrites the flip schedule: every surviving flip keeps its *original
//! pair rank* `h` (its position in the nested flip order) but moves to its
//! *new packed position*. Encoding a value still computes the flip count
//! from the **original** dimensionality — `x = d·(t − min)/(2·(max − min))`
//! — so the value→rank schedule is untouched and the guarantee
//!
//! ```text
//! pruned.encode(t) == selection.gather(original.encode(t))    (bit-exact)
//! ```
//!
//! holds for every value: a flip with rank `h < flips_for(t)/2` fires in
//! the original iff it fires here, and gathering commutes with XOR.
//! Because majority bundling is per-bit, the same identity lifts to whole
//! records: encoding through a pruned [`RecordEncoder`] equals gathering
//! the full-width record hypervector.
//!
//! [`RecordEncoder`]: crate::encoding::RecordEncoder

use crate::binary::{debug_assert_tail_invariant, BinaryHypervector, Dim, WORD_BITS};
use crate::distill::BitSelection;
use crate::encoding::linear::CHECKPOINT_STRIDE;
use crate::encoding::LinearEncoder;
use crate::error::HdcError;

/// A [`LinearEncoder`] remapped onto a pruned bit space.
#[derive(Debug, Clone)]
pub struct PrunedLinearEncoder {
    /// Pruned (output) dimensionality.
    dim: Dim,
    /// Original dimensionality — still drives the flip-count schedule.
    from: Dim,
    min: f64,
    max: f64,
    /// Flip-pair cap of the original encoder (shorter flip-list length).
    cap: usize,
    /// Gathered seed hypervector.
    seed: BinaryHypervector,
    /// Surviving flips as `(original pair rank, new bit position)`, sorted
    /// by rank (each rank contributes 0–2 entries: its ones-flip and/or
    /// zeros-flip may survive independently).
    flips: Vec<(u32, u32)>,
    /// Flattened cumulative flip masks over the *retained* flip list, one
    /// `dim.words()`-sized mask per [`CHECKPOINT_STRIDE`] entries.
    checkpoints: Vec<u64>,
}

impl PrunedLinearEncoder {
    /// Remaps `encoder` onto the bits retained by `selection`.
    ///
    /// The selection's source dimensionality must match the encoder's.
    pub fn new(encoder: &LinearEncoder, selection: &BitSelection) -> Result<Self, HdcError> {
        if selection.source_dim() != encoder.dim() {
            return Err(HdcError::DimensionMismatch {
                left: encoder.dim().get(),
                right: selection.source_dim().get(),
            });
        }
        let seed = selection.gather_hypervector(encoder.seed_hypervector())?;
        let (ones, zeros) = encoder.flip_order();
        let cap = ones.len().min(zeros.len());
        let mut flips = Vec::new();
        for h in 0..cap {
            // lint: index-ok (h < cap ≤ both list lengths)
            for &bit in &[ones[h], zeros[h]] {
                if let Some(p) = selection.position_of(bit) {
                    // lint: cast-ok (pair ranks and packed positions both
                    // fit u32 — dims are u32-indexable here)
                    flips.push((h as u32, p as u32));
                }
            }
        }
        let dim = selection.dim();
        let checkpoints = build_pruned_checkpoints(dim, &flips);
        let (min, max) = encoder.range();
        Ok(Self {
            dim,
            from: encoder.dim(),
            min,
            max,
            cap,
            seed,
            flips,
            checkpoints,
        })
    }

    /// The pruned (output) dimensionality.
    #[must_use]
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// The original (pre-pruning) dimensionality.
    #[must_use]
    pub fn source_dim(&self) -> Dim {
        self.from
    }

    /// The encoder's value range.
    #[must_use]
    pub fn range(&self) -> (f64, f64) {
        (self.min, self.max)
    }

    /// Number of surviving flip entries across all pair ranks.
    #[must_use]
    pub fn retained_flips(&self) -> usize {
        self.flips.len()
    }

    /// Number of original flip pairs applied for value `t` — identical to
    /// [`LinearEncoder::flips_for`] of the source encoder divided by two,
    /// because the schedule is computed from the *original*
    /// dimensionality.
    #[must_use]
    pub fn flip_pairs_for(&self, t: f64) -> usize {
        // lint: cast-ok (dim < 2^53 exactly in f64; x is clamped into
        // [0, dim/2] so the rounded usize cast cannot wrap)
        let t = t.clamp(self.min, self.max);
        let k = self.from.get() as f64;
        let x = k * (t - self.min) / (2.0 * (self.max - self.min));
        let half = (x / 2.0).round() as usize;
        half.min(self.cap)
    }

    /// Encodes value `t`, clamping it into the encoder's range.
    #[must_use]
    pub fn encode(&self, t: f64) -> BinaryHypervector {
        let mut hv = BinaryHypervector::zeros(self.dim);
        self.encode_into(t, &mut hv);
        hv
    }

    /// Encodes value `t` into an existing hypervector, overwriting it.
    ///
    /// # Panics
    /// Panics if `out.dim() != self.dim()`.
    // lint: index-ok (build_pruned_checkpoints emits one words-sized mask
    // per stride boundary covering ck; n_apply ≤ flips.len())
    pub fn encode_into(&self, t: f64, out: &mut BinaryHypervector) {
        assert_eq!(
            out.dim(),
            self.dim,
            "encode_into scratch dimensionality mismatch"
        );
        crate::obs::counter_add("hdc/pruned_encodes", 1);
        let half = self.flip_pairs_for(t);
        // lint: cast-ok (ranks fit u32 by construction)
        let n_apply = self
            .flips
            .partition_point(|&(rank, _)| (rank as usize) < half);
        let ck = n_apply / CHECKPOINT_STRIDE;
        let words = self.dim.words();
        let mask = &self.checkpoints[ck * words..(ck + 1) * words];
        for ((o, &s), &m) in out.words_mut().iter_mut().zip(self.seed.words()).zip(mask) {
            *o = s ^ m;
        }
        for &(_, p) in &self.flips[ck * CHECKPOINT_STRIDE..n_apply] {
            out.flip(p as usize);
        }
        debug_assert_tail_invariant(self.dim, out.words());
    }

    /// Like [`Self::encode`], but rejects NaN/infinite inputs instead of
    /// clamping them.
    pub fn encode_checked(&self, t: f64) -> Result<BinaryHypervector, HdcError> {
        if !t.is_finite() {
            return Err(HdcError::NonFiniteValue);
        }
        Ok(self.encode(t))
    }

    /// Fallible variant of [`Self::encode_into`].
    pub fn encode_checked_into(&self, t: f64, out: &mut BinaryHypervector) -> Result<(), HdcError> {
        if !t.is_finite() {
            return Err(HdcError::NonFiniteValue);
        }
        self.encode_into(t, out);
        Ok(())
    }

    /// Prunes this encoder further: the new selection addresses the
    /// *current* pruned space, and the composed encoder is equivalent to
    /// pruning the original encoder with the composed selection.
    pub fn prune(&self, selection: &BitSelection) -> Result<Self, HdcError> {
        if selection.source_dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim.get(),
                right: selection.source_dim().get(),
            });
        }
        let seed = selection.gather_hypervector(&self.seed)?;
        let flips: Vec<(u32, u32)> = self
            .flips
            .iter()
            .filter_map(|&(rank, p)| {
                selection
                    .position_of(p)
                    // lint: cast-ok (packed positions fit u32)
                    .map(|new_p| (rank, new_p as u32))
            })
            .collect();
        let dim = selection.dim();
        let checkpoints = build_pruned_checkpoints(dim, &flips);
        Ok(Self {
            dim,
            from: self.from,
            min: self.min,
            max: self.max,
            cap: self.cap,
            seed,
            flips,
            checkpoints,
        })
    }
}

/// Cumulative flip masks over the retained flip list: snapshot `c` covers
/// the first `c·CHECKPOINT_STRIDE` entries.
// lint: index-ok (packed positions are < dim by BitSelection, so
// p / WORD_BITS < words)
fn build_pruned_checkpoints(dim: Dim, flips: &[(u32, u32)]) -> Vec<u64> {
    let words = dim.words();
    let mut checkpoints = Vec::with_capacity((flips.len() / CHECKPOINT_STRIDE + 1) * words);
    let mut mask = vec![0u64; words];
    for n in 0..=flips.len() {
        if n % CHECKPOINT_STRIDE == 0 {
            checkpoints.extend_from_slice(&mask);
        }
        if n < flips.len() {
            let p = flips[n].1 as usize;
            mask[p / WORD_BITS] ^= 1u64 << (p % WORD_BITS);
        }
    }
    checkpoints
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(d: usize, k: usize, seed: u64) -> (LinearEncoder, BitSelection, PrunedLinearEncoder) {
        let enc = LinearEncoder::new(Dim::new(d), 0.0, 100.0, seed).unwrap();
        let sel = BitSelection::random(Dim::new(d), k, seed ^ 0x5E1E_C0DE).unwrap();
        let pruned = PrunedLinearEncoder::new(&enc, &sel).unwrap();
        (enc, sel, pruned)
    }

    #[test]
    fn pruned_encode_equals_gather_of_full_encode() {
        for (d, k) in [(1_000, 200), (10_050, 2_000), (130, 129), (64, 1)] {
            let (enc, sel, pruned) = setup(d, k, 42);
            for t in [
                0.0, 0.01, 13.7, 49.999, 50.0, 63.0, 64.0, 99.0, 100.0, 250.0, -5.0,
            ] {
                let expected = sel.gather_hypervector(&enc.encode(t)).unwrap();
                assert_eq!(pruned.encode(t), expected, "d={d} k={k} t={t}");
            }
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let enc = LinearEncoder::new(Dim::new(256), 0.0, 1.0, 1).unwrap();
        let sel = BitSelection::random(Dim::new(128), 10, 0).unwrap();
        assert!(PrunedLinearEncoder::new(&enc, &sel).is_err());
    }

    #[test]
    fn schedule_follows_the_original_dimensionality() {
        let (enc, _, pruned) = setup(1_000, 100, 9);
        for t in [0.0, 10.0, 55.5, 100.0] {
            assert_eq!(pruned.flip_pairs_for(t), enc.flips_for(t) / 2, "t={t}");
        }
        assert_eq!(pruned.dim().get(), 100);
        assert_eq!(pruned.source_dim().get(), 1_000);
        assert_eq!(pruned.range(), (0.0, 100.0));
    }

    #[test]
    fn checked_variants_reject_non_finite() {
        let (_, _, pruned) = setup(512, 64, 3);
        assert!(pruned.encode_checked(f64::NAN).is_err());
        let mut scratch = BinaryHypervector::zeros(pruned.dim());
        assert!(pruned
            .encode_checked_into(f64::INFINITY, &mut scratch)
            .is_err());
        pruned.encode_checked_into(42.0, &mut scratch).unwrap();
        assert_eq!(scratch, pruned.encode(42.0));
    }

    #[test]
    fn double_prune_equals_composed_selection() {
        let (enc, outer, pruned) = setup(2_000, 500, 77);
        let inner = BitSelection::random(Dim::new(500), 120, 5).unwrap();
        let twice = pruned.prune(&inner).unwrap();
        let composed_indices: Vec<u32> = inner
            .indices()
            .iter()
            .map(|&p| outer.indices()[p as usize])
            .collect();
        let composed = BitSelection::new(Dim::new(2_000), composed_indices).unwrap();
        let direct = PrunedLinearEncoder::new(&enc, &composed).unwrap();
        for t in [0.0, 33.0, 66.6, 100.0] {
            assert_eq!(twice.encode(t), direct.encode(t), "t={t}");
        }
    }

    #[test]
    fn residual_flips_cross_checkpoint_boundaries() {
        // A dense selection retains ~2 entries per pair rank, so the
        // 64-entry checkpoint stride lands mid-rank; sweep values whose
        // retained-flip counts straddle the boundary.
        let (enc, sel, pruned) = setup(1_000, 990, 13);
        let step = 100.0 / 1_000.0;
        for j in 0..200 {
            let t = j as f64 * step * 5.0;
            let expected = sel.gather_hypervector(&enc.encode(t)).unwrap();
            assert_eq!(pruned.encode(t), expected, "t={t}");
        }
    }
}
