//! Feature and record encoders (§II-B of the paper).
//!
//! * [`LinearEncoder`] — level encoding for continuous features: the seed
//!   hypervector represents `min(V)`; increasing values flip a growing
//!   *nested* prefix of a fixed random flip order so that (a) Hamming
//!   distance between two encoded values is proportional to the difference
//!   of the values, and (b) `max(V)` lands exactly orthogonal to `min(V)`
//!   (the paper's "range is doubled" construction).
//! * [`CategoricalEncoder`] — one quasi-orthogonal hypervector per category;
//!   with two categories this is the paper's binary-feature encoding (seed
//!   for 0, balanced random flips for 1).
//! * [`RecordEncoder`] — per-feature encoders driven by a [`RecordSchema`],
//!   bundled into one patient hypervector by majority vote (tie → 1).
//! * [`ItemMemory`] — random symbol table for generic HDC workflows.

mod categorical;
mod item_memory;
pub(crate) mod linear;
mod ngram;
mod pruned;
mod quantized;
mod record;

pub use categorical::CategoricalEncoder;
pub use item_memory::ItemMemory;
pub use linear::LinearEncoder;
pub use ngram::NgramEncoder;
pub use pruned::PrunedLinearEncoder;
pub use quantized::QuantizedLinearEncoder;
pub use record::{
    FeatureKind, FeatureSpec, LenientBatch, QuarantineEntry, QuarantineReport, RecordEncoder,
    RecordSchema, RecordScratch,
};

use crate::binary::{BinaryHypervector, Dim};
use crate::bundle::Bundler;
use crate::error::HdcError;

/// A per-feature encoder: either linear (continuous) or categorical.
///
/// Stored as an enum rather than a trait object so records can hold a
/// homogeneous `Vec<FeatureEncoder>` without boxing or dynamic dispatch in
/// the encoding hot loop.
#[derive(Debug, Clone)]
pub enum FeatureEncoder {
    /// Level encoding of a continuous value.
    Linear(LinearEncoder),
    /// Level encoding remapped into a distilled (pruned) bit space.
    PrunedLinear(PrunedLinearEncoder),
    /// Quantized level encoding (finite resolution).
    Quantized(QuantizedLinearEncoder),
    /// Discrete category lookup.
    Categorical(CategoricalEncoder),
}

impl FeatureEncoder {
    /// Encodes a raw feature value.
    ///
    /// Continuous values are clamped to the encoder's range (the paper:
    /// "A lesser value could be found in new data that hasn't been seen by
    /// the encoder" — it maps to the seed vector). Categorical values are
    /// rounded to the nearest category index.
    pub fn encode(&self, value: f64) -> Result<BinaryHypervector, HdcError> {
        match self {
            Self::Linear(e) => e.encode_checked(value),
            Self::PrunedLinear(e) => e.encode_checked(value),
            Self::Quantized(e) => e.encode(value).cloned(),
            Self::Categorical(e) => {
                if !value.is_finite() {
                    return Err(HdcError::NonFiniteValue);
                }
                e.encode(value.round().max(0.0) as usize)
            }
        }
    }

    /// Encodes `value` and adds one vote to `bundler`, reusing `scratch`
    /// for the continuous case.
    ///
    /// This is the allocation-free hot path behind
    /// [`RecordEncoder::encode_batch`]: linear encoders write into
    /// `scratch` in place, while quantized and categorical encoders vote
    /// with a borrowed cached code (no clone). Semantics are identical to
    /// `bundler.push(&self.encode(value)?)`.
    ///
    /// # Panics
    /// Panics if `scratch.dim() != self.dim()` (see
    /// [`LinearEncoder::encode_into`]).
    pub fn encode_vote(
        &self,
        value: f64,
        scratch: &mut BinaryHypervector,
        bundler: &mut Bundler,
    ) -> Result<(), HdcError> {
        match self {
            Self::Linear(e) => {
                e.encode_checked_into(value, scratch)?;
                bundler.push(scratch)
            }
            Self::PrunedLinear(e) => {
                e.encode_checked_into(value, scratch)?;
                bundler.push(scratch)
            }
            Self::Quantized(e) => bundler.push(e.encode(value)?),
            Self::Categorical(e) => {
                if !value.is_finite() {
                    return Err(HdcError::NonFiniteValue);
                }
                let idx = value.round().max(0.0) as usize;
                let code = e.code(idx).ok_or(HdcError::ArityMismatch {
                    expected: e.n_categories(),
                    got: idx + 1,
                })?;
                bundler.push(code)
            }
        }
    }

    /// The output dimensionality.
    #[must_use]
    pub fn dim(&self) -> Dim {
        match self {
            Self::Linear(e) => e.dim(),
            Self::PrunedLinear(e) => e.dim(),
            Self::Quantized(e) => e.dim(),
            Self::Categorical(e) => e.dim(),
        }
    }

    /// Remaps this encoder onto the bits retained by `selection`:
    /// `pruned.encode(v) == selection.gather(self.encode(v))` bit-exactly
    /// for every value `v` the original accepts.
    pub fn prune(&self, selection: &crate::distill::BitSelection) -> Result<Self, HdcError> {
        Ok(match self {
            Self::Linear(e) => Self::PrunedLinear(PrunedLinearEncoder::new(e, selection)?),
            Self::PrunedLinear(e) => Self::PrunedLinear(e.prune(selection)?),
            Self::Quantized(e) => Self::Quantized(e.prune(selection)?),
            Self::Categorical(e) => Self::Categorical(e.prune(selection)?),
        })
    }
}
