//! Property tests for the streaming encode pipeline.
//!
//! The load-bearing property: streaming is a *restructuring* of batch
//! encode, not a reimplementation — for any cohort, any micro-batch
//! size, and any dimensionality (including ragged tail words), the
//! hypervectors flowing into a sink are bit-identical to
//! `RecordEncoder::encode_batch` over the same rows. On top of that the
//! commutative sinks (bundle, class accumulators) must be stream-order
//! invariant, the trainer sink must match the batch `partial_fit`
//! trajectory exactly, and lenient quarantine accounting must add up.

use hyperfex_hdc::binary::Dim;
use hyperfex_hdc::bundle::Bundler;
use hyperfex_hdc::classify::{OnlineTrainer, PerceptronTrainer};
use hyperfex_hdc::encoding::{FeatureSpec, RecordEncoder, RecordSchema};
use hyperfex_hdc::rng::SplitMix64;
use hyperfex_hdc::stream::{
    BundlerSink, ClassAccumulatorSink, CollectSink, RowStream, StreamEncoder, TrainerSink,
};
use proptest::prelude::*;

/// Dimensionalities that exercise the tail-word masking paths: word
/// aligned, one over, one under, and the paper-adjacent 10_050 from the
/// distillation experiments.
const DIMS: [usize; 5] = [64, 63, 65, 961, 10_050];

fn encoder(dim: usize, seed: u64) -> RecordEncoder {
    let schema = RecordSchema::new(vec![
        FeatureSpec::continuous("glucose", 0.0, 200.0),
        FeatureSpec::continuous("bmi", 10.0, 60.0),
        FeatureSpec::binary("on_insulin"),
        FeatureSpec::categorical("cohort", 4),
    ]);
    RecordEncoder::new(Dim::new(dim), schema, seed).unwrap()
}

/// A seeded cohort of in-range rows for the schema above.
fn rows(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = SplitMix64::new(seed);
    let rows = (0..n)
        .map(|_| {
            vec![
                rng.next_f64() * 200.0,
                10.0 + rng.next_f64() * 50.0,
                f64::from(rng.next_bounded(2) as u32),
                f64::from(rng.next_bounded(4) as u32),
            ]
        })
        .collect();
    let labels = (0..n).map(|i| i % 3).collect();
    (rows, labels)
}

/// A seeded permutation of `0..n` (partial Fisher–Yates over the full set).
fn permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut rng = SplitMix64::new(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in 0..n.saturating_sub(1) {
        // lint: cast-ok (bound is n - i, a usize that fits u64)
        let j = i + rng.next_bounded((n - i) as u64) as usize;
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming encode is bit-identical to batch encode for every
    /// dimensionality class and any micro-batch size — including batches
    /// larger than the stream and the degenerate one-record batch.
    #[test]
    fn streaming_matches_batch_bit_exactly(
        seed in any::<u64>(),
        dim_ix in 0usize..DIMS.len(),
        n in 1usize..40,
        micro_batch in 1usize..64,
    ) {
        let enc = encoder(DIMS[dim_ix], seed ^ 0xE);
        let (cohort, labels) = rows(seed, n);
        let expected = enc.encode_batch(&cohort).unwrap();

        let mut stream = RowStream::new(&cohort, &labels).unwrap();
        let mut sink = CollectSink::new();
        let absorbed = StreamEncoder::new(&enc)
            .with_micro_batch(micro_batch)
            .encode_stream(&mut stream, &mut sink)
            .unwrap();
        prop_assert_eq!(absorbed, n);
        prop_assert_eq!(sink.hypervectors(), expected.as_slice());
        prop_assert_eq!(sink.labels(), labels.as_slice());
    }

    /// The bundle sink reproduces encode-then-bundle bit-exactly, and is
    /// invariant under stream order (counter adds commute).
    #[test]
    fn bundle_sink_matches_batch_and_ignores_order(
        seed in any::<u64>(),
        dim_ix in 0usize..DIMS.len(),
        n in 1usize..40,
    ) {
        let dim = DIMS[dim_ix];
        let enc = encoder(dim, seed ^ 0xB);
        let (cohort, labels) = rows(seed, n);

        let mut reference = Bundler::new(Dim::new(dim));
        for hv in enc.encode_batch(&cohort).unwrap() {
            reference.push(&hv).unwrap();
        }
        let expected = reference.finish().unwrap();

        let mut sink = BundlerSink::new(Dim::new(dim));
        let mut stream = RowStream::new(&cohort, &labels).unwrap();
        StreamEncoder::new(&enc).with_micro_batch(7)
            .encode_stream(&mut stream, &mut sink).unwrap();
        prop_assert_eq!(sink.votes() as usize, n);
        prop_assert_eq!(&sink.finish().unwrap(), &expected);

        // Any permutation of the same records bundles identically.
        let order = permutation(seed ^ 0x5EED, n);
        let shuffled: Vec<Vec<f64>> = order.iter().map(|&i| cohort[i].clone()).collect();
        let mut sink = BundlerSink::new(Dim::new(dim));
        let mut stream = RowStream::unlabeled(&shuffled);
        StreamEncoder::new(&enc).encode_stream(&mut stream, &mut sink).unwrap();
        prop_assert_eq!(sink.finish().unwrap(), expected);
    }

    /// The class-accumulator sink is stream-order invariant: permuting the
    /// records (labels riding along) yields bit-identical per-class state.
    #[test]
    fn class_accumulator_sink_ignores_order(
        seed in any::<u64>(),
        dim_ix in 0usize..DIMS.len(),
        n in 2usize..40,
    ) {
        let dim = DIMS[dim_ix];
        let enc = encoder(dim, seed ^ 0xC);
        let (cohort, labels) = rows(seed, n);

        let mut forward = ClassAccumulatorSink::new(Dim::new(dim));
        let mut stream = RowStream::new(&cohort, &labels).unwrap();
        StreamEncoder::new(&enc).encode_stream(&mut stream, &mut forward).unwrap();

        let order = permutation(seed ^ 0x0BD3, n);
        let shuffled_rows: Vec<Vec<f64>> = order.iter().map(|&i| cohort[i].clone()).collect();
        let shuffled_labels: Vec<usize> = order.iter().map(|&i| labels[i]).collect();
        let mut permuted = ClassAccumulatorSink::new(Dim::new(dim));
        let mut stream = RowStream::new(&shuffled_rows, &shuffled_labels).unwrap();
        StreamEncoder::new(&enc).with_micro_batch(3)
            .encode_stream(&mut stream, &mut permuted).unwrap();

        let (f, p) = (forward.accumulators(), permuted.accumulators());
        prop_assert_eq!(f.n_classes(), p.n_classes());
        for c in 0..f.n_classes() {
            prop_assert_eq!(f.prototype(c), p.prototype(c), "class {} differs", c);
        }
    }

    /// The trainer sink walks the exact batch `partial_fit` trajectory:
    /// same prototypes, same correction count, same predictions.
    #[test]
    fn trainer_sink_matches_partial_fit_trajectory(
        seed in any::<u64>(),
        n in 2usize..32,
        micro_batch in 1usize..16,
    ) {
        let dim = 320;
        let enc = encoder(dim, seed ^ 0x7);
        let (cohort, labels) = rows(seed, n);
        let encoded = enc.encode_batch(&cohort).unwrap();

        let mut reference = PerceptronTrainer::new(Dim::new(dim));
        let corrections = reference.partial_fit(&encoded, &labels).unwrap();

        let mut streamed = PerceptronTrainer::new(Dim::new(dim));
        let mut sink = TrainerSink::new(&mut streamed);
        let mut stream = RowStream::new(&cohort, &labels).unwrap();
        StreamEncoder::new(&enc).with_micro_batch(micro_batch)
            .encode_stream(&mut stream, &mut sink).unwrap();
        prop_assert_eq!(sink.corrections(), corrections);
        for c in 0..reference.n_classes() {
            prop_assert_eq!(streamed.prototype(c).unwrap(), reference.prototype(c).unwrap());
        }
    }

    /// Lenient streaming quarantines exactly the bad rows: accounting adds
    /// up, survivors are bit-identical to a batch encode of the clean rows,
    /// and the strict path aborts on the first bad row.
    #[test]
    fn lenient_quarantine_accounting_adds_up(
        seed in any::<u64>(),
        dim_ix in 0usize..DIMS.len(),
        n in 1usize..40,
        micro_batch in 1usize..32,
    ) {
        let enc = encoder(DIMS[dim_ix], seed ^ 0xF);
        let (mut cohort, labels) = rows(seed, n);
        // Poison a seeded subset of rows with a NaN.
        let mut rng = SplitMix64::new(seed ^ 0xBAD);
        let mut poisoned = Vec::new();
        for (i, row) in cohort.iter_mut().enumerate() {
            if rng.next_f64() < 0.3 {
                row[rng.next_bounded(4) as usize] = f64::NAN;
                poisoned.push(i);
            }
        }

        let mut sink = CollectSink::new();
        let mut stream = RowStream::new(&cohort, &labels).unwrap();
        let outcome = StreamEncoder::new(&enc)
            .with_micro_batch(micro_batch)
            .encode_stream_lenient(&mut stream, &mut sink)
            .unwrap();
        prop_assert_eq!(outcome.report.total(), n);
        prop_assert_eq!(outcome.report.kept() + outcome.report.quarantined(), n);
        prop_assert_eq!(outcome.report.quarantined(), poisoned.len());
        prop_assert_eq!(outcome.absorbed, n - poisoned.len());
        let quarantined_rows: Vec<usize> =
            outcome.report.entries().iter().map(|e| e.row).collect();
        prop_assert_eq!(&quarantined_rows, &poisoned);

        let clean: Vec<Vec<f64>> = cohort
            .iter()
            .enumerate()
            .filter(|(i, _)| !poisoned.contains(i))
            .map(|(_, r)| r.clone())
            .collect();
        if clean.is_empty() {
            prop_assert!(sink.hypervectors().is_empty());
        } else {
            prop_assert_eq!(
                sink.hypervectors(),
                enc.encode_batch(&clean).unwrap().as_slice()
            );
        }

        // Strict mode aborts iff something was poisoned.
        let mut sink = CollectSink::new();
        let mut stream = RowStream::new(&cohort, &labels).unwrap();
        let strict = StreamEncoder::new(&enc).encode_stream(&mut stream, &mut sink);
        prop_assert_eq!(strict.is_err(), !poisoned.is_empty());
    }
}
