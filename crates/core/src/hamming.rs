//! The paper's pure-HDC classification model (§II-C): encode, then 1-NN
//! under Hamming distance, validated leave-one-out.

use crate::error::HyperfexError;
use crate::extractor::HdcFeatureExtractor;
use hyperfex_data::Table;
use hyperfex_eval::metrics::{BinaryMetrics, ConfusionMatrix};
use hyperfex_hdc::binary::Dim;
use hyperfex_hdc::classify::{HammingKnnClassifier, LeaveOneOut, LoocvOutcome};
use hyperfex_hdc::encoding::QuarantineReport;

/// End-to-end pure-HDC model.
#[derive(Debug, Clone)]
pub struct HammingModel {
    dim: Dim,
    seed: u64,
    k: usize,
}

impl HammingModel {
    /// Creates the paper's configuration: 1 nearest neighbour.
    #[must_use]
    pub fn new(dim: Dim, seed: u64) -> Self {
        Self { dim, seed, k: 1 }
    }

    /// Uses `k` neighbours instead of 1 (extension).
    #[must_use]
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Runs the full §II-C procedure: encode every patient, then
    /// leave-one-out 1-NN classification.
    ///
    /// Note: like the paper, the encoder ranges are fitted on the whole
    /// table — under leave-one-out the encoding step is part of the
    /// dataset preparation, not of the per-fold model (there is no model
    /// to fit: "we only need to measure distances").
    pub fn evaluate_loocv(&self, table: &Table) -> Result<LoocvOutcome, HyperfexError> {
        let _span = crate::obs::span("core/evaluate_loocv");
        let mut extractor = HdcFeatureExtractor::new(self.dim, self.seed);
        let hvs = extractor.fit_transform(table)?;
        let outcome = LeaveOneOut::with_k(self.k)?.run(&hvs, table.labels())?;
        Ok(outcome)
    }

    /// Degradation-aware variant of [`HammingModel::evaluate_loocv`]:
    /// rows that fail to encode (missing values, NaN, injected faults) are
    /// quarantined and LOOCV runs over the survivors, so one corrupt
    /// record degrades coverage instead of aborting the evaluation.
    ///
    /// Still fails on structural problems: an empty table, a column with
    /// no observable range, or fewer than two surviving rows.
    pub fn evaluate_loocv_lenient(&self, table: &Table) -> Result<RobustLoocv, HyperfexError> {
        let _span = crate::obs::span("core/evaluate_loocv_lenient");
        let mut extractor = HdcFeatureExtractor::new(self.dim, self.seed);
        extractor.fit(table, None)?;
        let lenient = extractor.transform_lenient(table, None)?;
        let labels: Vec<usize> = lenient
            .kept_rows
            .iter()
            .map(|&i| table.labels()[i])
            .collect();
        let outcome = LeaveOneOut::with_k(self.k)?.run(&lenient.hypervectors, &labels)?;
        Ok(RobustLoocv {
            outcome,
            kept_rows: lenient.kept_rows,
            report: lenient.report,
        })
    }

    /// Derives the paper's metric set from a LOOCV outcome.
    pub fn metrics(outcome: &LoocvOutcome) -> Option<BinaryMetrics> {
        outcome
            .binary_counts()
            .map(|(tp, tn, fp, fn_)| ConfusionMatrix { tp, tn, fp, fn_ }.metrics())
    }

    /// Fits a reusable classifier on a training split (for train/test
    /// evaluation instead of LOOCV).
    pub fn fit(
        &self,
        table: &Table,
        train_rows: &[usize],
    ) -> Result<FittedHammingModel, HyperfexError> {
        let mut extractor = HdcFeatureExtractor::new(self.dim, self.seed);
        extractor.fit(table, Some(train_rows))?;
        let hvs = extractor.transform(table, Some(train_rows))?;
        let labels: Vec<usize> = train_rows.iter().map(|&i| table.labels()[i]).collect();
        let mut knn = HammingKnnClassifier::new(self.k)?;
        knn.fit(hvs, labels)?;
        Ok(FittedHammingModel { extractor, knn })
    }
}

/// The outcome of [`HammingModel::evaluate_loocv_lenient`]: LOOCV results
/// over the rows that survived encoding, plus quarantine accounting.
#[derive(Debug, Clone)]
pub struct RobustLoocv {
    /// LOOCV outcome over the surviving rows, in `kept_rows` order.
    pub outcome: LoocvOutcome,
    /// Original table index of each surviving row.
    pub kept_rows: Vec<usize>,
    /// Which rows were quarantined and why.
    pub report: QuarantineReport,
}

/// A Hamming model fitted on a training split.
#[derive(Debug, Clone)]
pub struct FittedHammingModel {
    extractor: HdcFeatureExtractor,
    knn: HammingKnnClassifier,
}

impl FittedHammingModel {
    /// Predicts classes for the selected rows.
    pub fn predict(&self, table: &Table, rows: &[usize]) -> Result<Vec<usize>, HyperfexError> {
        let hvs = self.extractor.transform(table, Some(rows))?;
        Ok(self.knn.predict_batch(&hvs)?)
    }

    /// Accuracy over the selected rows.
    pub fn accuracy(&self, table: &Table, rows: &[usize]) -> Result<f64, HyperfexError> {
        let predictions = self.predict(table, rows)?;
        let correct = predictions
            .iter()
            .zip(rows)
            .filter(|(p, &i)| **p == table.labels()[i])
            .count();
        Ok(correct as f64 / rows.len().max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperfex_data::sylhet::{self, SylhetConfig};

    fn cohort() -> Table {
        sylhet::generate(&SylhetConfig {
            n_positive: 60,
            n_negative: 40,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn loocv_on_separable_cohort_beats_base_rate() {
        let table = cohort();
        let outcome = HammingModel::new(Dim::new(2_000), 3)
            .evaluate_loocv(&table)
            .unwrap();
        // Base rate = 0.6 (majority class); Sylhet-style symptoms are
        // strongly separating, so Hamming 1-NN should be well above it.
        assert!(outcome.accuracy() > 0.70, "accuracy {}", outcome.accuracy());
        assert_eq!(outcome.total, 100);
        let m = HammingModel::metrics(&outcome).unwrap();
        assert!(m.recall > 0.7);
        assert!(m.specificity > 0.5);
    }

    #[test]
    fn train_test_fit_generalises() {
        let table = cohort();
        let train: Vec<usize> = (0..100).filter(|i| i % 5 != 0).collect();
        let test: Vec<usize> = (0..100).filter(|i| i % 5 == 0).collect();
        let model = HammingModel::new(Dim::new(2_000), 3)
            .fit(&table, &train)
            .unwrap();
        let acc = model.accuracy(&table, &test).unwrap();
        assert!(acc > 0.6, "held-out accuracy {acc}");
        assert_eq!(model.predict(&table, &test).unwrap().len(), test.len());
    }

    #[test]
    fn k3_variant_runs() {
        let table = cohort();
        let outcome = HammingModel::new(Dim::new(1_000), 3)
            .with_k(3)
            .evaluate_loocv(&table)
            .unwrap();
        assert!(outcome.accuracy() > 0.7);
    }

    #[test]
    fn lenient_loocv_quarantines_corrupt_rows() {
        let table = cohort();
        // Corrupt two rows with NaN ages.
        let mut rows: Vec<Vec<f64>> = table.rows().to_vec();
        rows[5][0] = f64::NAN;
        rows[40][0] = f64::NAN;
        let corrupt = Table::new(table.columns().to_vec(), rows, table.labels().to_vec()).unwrap();
        let model = HammingModel::new(Dim::new(1_000), 3);
        let robust = model.evaluate_loocv_lenient(&corrupt).unwrap();
        assert_eq!(robust.report.quarantined(), 2);
        assert_eq!(robust.kept_rows.len(), 98);
        assert!(!robust.kept_rows.contains(&5));
        assert!(!robust.kept_rows.contains(&40));
        assert_eq!(robust.outcome.total, 98);
        assert!(robust.outcome.accuracy() > 0.7);
        // On a clean table the lenient path matches the strict one.
        let strict = model.evaluate_loocv(&table).unwrap();
        let robust = model.evaluate_loocv_lenient(&table).unwrap();
        assert!(robust.report.is_clean());
        assert_eq!(robust.outcome, strict);
    }

    #[test]
    fn deterministic_per_seed() {
        let table = cohort();
        let a = HammingModel::new(Dim::new(1_000), 5)
            .evaluate_loocv(&table)
            .unwrap();
        let b = HammingModel::new(Dim::new(1_000), 5)
            .evaluate_loocv(&table)
            .unwrap();
        assert_eq!(a.predictions, b.predictions);
    }
}
