//! Chaos property test: seeded random fault plans over both synthetic
//! cohorts. Registered by `hyperfex-faults` behind `fault-injection`:
//!
//! ```text
//! cargo test -p hyperfex-faults --features fault-injection
//! ```
//!
//! The property under test has three clauses:
//!
//! 1. **No panics.** Whatever a plan injects — corrupted cells, label
//!    noise, truncation, bit flips, mid-pipeline failpoints — the pipeline
//!    finishes with `Ok` or a typed error.
//! 2. **Honest quarantine accounting.** Whenever the lenient path
//!    succeeds, kept + quarantined rows add up to the rows attempted, and
//!    the LOOCV outcome covers exactly the survivors.
//! 3. **Byte-identical replay.** Running the same plan twice produces the
//!    same transcript, down to every count and accuracy digit.

use std::fmt::Write as _;

use hyperfex::prelude::*;
use hyperfex_faults::{registry, FaultPlan};
use hyperfex_hdc::classify::{LeaveOneOut, OnlineTrainer, PerceptronTrainer};

const N_PLANS: u64 = 16;
const DIM: usize = 256;

fn cohorts() -> Vec<(&'static str, Table)> {
    let pima = pima::generate(&PimaConfig {
        n_negative: 90,
        n_positive: 60,
        complete_cases: (70, 45),
        ..Default::default()
    })
    .unwrap();
    let sylhet = sylhet::generate(&SylhetConfig {
        n_positive: 70,
        n_negative: 50,
        ..Default::default()
    })
    .unwrap();
    vec![("pima", pima), ("sylhet", sylhet)]
}

/// Runs the whole pipeline under one fault plan and returns a transcript.
/// Every fallible step is allowed to fail *typed*; a panic anywhere fails
/// the test. The transcript captures every observable outcome so replay
/// comparison is byte-exact.
fn run_pipeline(name: &str, base: &Table, plan: &FaultPlan) -> String {
    let mut log = format!("== {name} seed {} ==\n", plan.seed);

    // Data layer: corrupt the table.
    let corrupted = match plan.apply_table(base) {
        Ok(t) => t,
        Err(e) => {
            writeln!(log, "apply_table: error: {e}").unwrap();
            return log;
        }
    };
    writeln!(
        log,
        "table: rows={} missing={}",
        corrupted.n_rows(),
        corrupted.n_missing()
    )
    .unwrap();

    // Pipeline layer: arm the failpoints for everything downstream.
    let _guard =
        registry::install(&plan.fail_rules).expect("random plans arm each seam at most once");

    // Missing-data treatment; an unimputable or injected failure degrades
    // to dropping incomplete rows instead of aborting.
    let prepared = match impute_class_median(&corrupted) {
        Ok(t) => t,
        Err(e) => {
            writeln!(log, "impute: error: {e} (degrading to drop_missing)").unwrap();
            drop_missing(&corrupted)
        }
    };
    writeln!(log, "prepared: rows={}", prepared.n_rows()).unwrap();

    let model = HammingModel::new(Dim::new(DIM), 7);

    // Strict path: may fail typed (injected seams, leftover NaN).
    match model.evaluate_loocv(&prepared) {
        Ok(outcome) => writeln!(
            log,
            "strict: total={} acc={:.6}",
            outcome.total,
            outcome.accuracy()
        )
        .unwrap(),
        Err(e) => writeln!(log, "strict: error: {e}").unwrap(),
    }

    // Lenient path: must quarantine rather than abort on row-level faults.
    match model.evaluate_loocv_lenient(&prepared) {
        Ok(robust) => {
            assert_eq!(
                robust.report.kept() + robust.report.quarantined(),
                robust.report.total(),
                "quarantine accounting must add up"
            );
            assert_eq!(
                robust.kept_rows.len(),
                robust.report.kept(),
                "kept_rows must match the report"
            );
            assert_eq!(
                robust.outcome.total,
                robust.kept_rows.len(),
                "LOOCV must cover exactly the survivors"
            );
            writeln!(
                log,
                "lenient: kept={} quarantined={} acc={:.6}",
                robust.report.kept(),
                robust.report.quarantined(),
                robust.outcome.accuracy()
            )
            .unwrap();
        }
        Err(e) => writeln!(log, "lenient: error: {e}").unwrap(),
    }

    // Storage layer: encode, degrade the stored hypervectors, re-evaluate.
    let mut extractor = HdcFeatureExtractor::new(Dim::new(DIM), 7);
    if let Err(e) = extractor.fit(&prepared, None) {
        writeln!(log, "fit: error: {e}").unwrap();
        return log;
    }
    match extractor.transform_lenient(&prepared, None) {
        Ok(mut lenient) => {
            if let Err(e) = plan.apply_store(&mut lenient.hypervectors) {
                writeln!(log, "apply_store: error: {e}").unwrap();
                return log;
            }
            let labels: Vec<usize> = lenient
                .kept_rows
                .iter()
                .map(|&i| prepared.labels()[i])
                .collect();
            match LeaveOneOut::new().run(&lenient.hypervectors, &labels) {
                Ok(outcome) => writeln!(
                    log,
                    "degraded(p={:.4}): total={} acc={:.6}",
                    plan.flip_rate,
                    outcome.total,
                    outcome.accuracy()
                )
                .unwrap(),
                Err(e) => writeln!(log, "degraded: error: {e}").unwrap(),
            }
            // Online layer: stream the (possibly bit-flipped) store through
            // a perceptron trainer. The `hdc/trainer_partial_fit` seam is
            // armed by the same rule set as everything above.
            let mut trainer = PerceptronTrainer::new(Dim::new(DIM));
            match trainer.partial_fit(&lenient.hypervectors, &labels) {
                Ok(corrections) => writeln!(
                    log,
                    "trainer: classes={} corrections={corrections}",
                    trainer.n_classes()
                )
                .unwrap(),
                Err(e) => writeln!(log, "trainer: error: {e}").unwrap(),
            }
        }
        Err(e) => writeln!(log, "transform: error: {e}").unwrap(),
    }
    log
}

#[test]
fn seeded_fault_plans_never_panic_and_replay_byte_identically() {
    let cohorts = cohorts();
    let mut injected_somewhere = false;
    for seed in 0..N_PLANS {
        let plan = FaultPlan::random(seed);
        injected_somewhere |= !plan.fail_rules.is_empty() || plan.flip_rate > 0.0;
        for (name, base) in &cohorts {
            let first = run_pipeline(name, base, &plan);
            let second = run_pipeline(name, base, &plan);
            assert_eq!(
                first, second,
                "plan seed {seed} on {name} must replay byte-identically"
            );
        }
    }
    assert!(
        injected_somewhere,
        "the plan generator stopped producing faults — the chaos test is vacuous"
    );
}

#[test]
fn the_none_plan_reproduces_the_clean_pipeline_exactly() {
    for (name, base) in &cohorts() {
        let treated = impute_class_median(base).unwrap();
        let clean = HammingModel::new(Dim::new(DIM), 7)
            .evaluate_loocv(&treated)
            .unwrap();
        let transcript = run_pipeline(name, base, &FaultPlan::none(0));
        let expected = format!("strict: total={} acc={:.6}", clean.total, clean.accuracy());
        assert!(
            transcript.contains(&expected),
            "{name}: expected `{expected}` in transcript:\n{transcript}"
        );
        assert!(
            transcript.contains(&format!(
                "lenient: kept={} quarantined=0 acc={:.6}",
                clean.total,
                clean.accuracy()
            )),
            "{name}: lenient path must match strict on a clean table:\n{transcript}"
        );
    }
}

#[test]
fn trainer_partial_fit_survives_bit_flip_injection() {
    let (_, table) = &cohorts()[1];
    let treated = impute_class_median(table).unwrap();
    let mut extractor = HdcFeatureExtractor::new(Dim::new(DIM), 7);
    let mut hvs = extractor.fit_transform(&treated).unwrap();
    // Heavy seeded storage degradation, then several online passes: the
    // trainer must absorb corrupted records without panicking and keep
    // predicting valid classes.
    let mut plan = FaultPlan::none(3);
    plan.flip_rate = 0.25;
    plan.apply_store(&mut hvs).unwrap();
    let mut trainer = PerceptronTrainer::new(Dim::new(DIM));
    for _ in 0..3 {
        trainer.partial_fit(&hvs, treated.labels()).unwrap();
    }
    let predictions = trainer.predict_batch(&hvs).unwrap();
    assert_eq!(predictions.len(), hvs.len());
    assert!(predictions.iter().all(|&p| p < trainer.n_classes()));

    // An armed `hdc/trainer_partial_fit` seam surfaces as a typed error
    // that names the failpoint — never a panic.
    let rules = vec![hyperfex_faults::FailRule {
        point: "hdc/trainer_partial_fit".to_string(),
        action: hyperfex_faults::FaultAction::Fail,
        after: 0,
        times: None,
    }];
    let _guard = registry::install(&rules).expect("rules target distinct seams");
    let err = trainer.partial_fit(&hvs, treated.labels()).unwrap_err();
    assert!(
        err.to_string().contains("hdc/trainer_partial_fit"),
        "error must name the failpoint, got: {err}"
    );
}

#[test]
fn stream_encode_seam_aborts_strict_quarantines_lenient_and_replays() {
    use hyperfex_hdc::stream::CollectSink;

    let (_, table) = &cohorts()[0];
    let treated = impute_class_median(table).unwrap();
    let mut extractor = HdcFeatureExtractor::new(Dim::new(DIM), 7);
    extractor.fit(&treated, None).unwrap();

    // Fire on records 10, 11, 12 of the stream. The seam is evaluated
    // once per record on the draining thread, so the window is exact.
    let rules = vec![hyperfex_faults::FailRule {
        point: "hdc/stream_encode".to_string(),
        action: hyperfex_faults::FaultAction::Fail,
        after: 10,
        times: Some(3),
    }];

    // Strict: the first injected record aborts the stream with a typed
    // error naming the seam; the sink keeps exactly the records absorbed
    // before the abort.
    {
        let _guard = registry::install(&rules).expect("rules target distinct seams");
        let mut stream = TableStream::new(&treated, None).unwrap();
        let mut sink = CollectSink::new();
        let err = extractor
            .transform_stream(&mut stream, &mut sink)
            .unwrap_err();
        assert!(
            err.to_string().contains("hdc/stream_encode"),
            "error must name the failpoint, got: {err}"
        );
        assert_eq!(sink.labels().len(), 10, "absorbed records stay absorbed");
    }

    // Lenient: injected records are quarantined, the accounting adds up,
    // and the surviving hypervectors are exactly the clean encode minus
    // the quarantined rows.
    let run_lenient = || {
        let _guard = registry::install(&rules).expect("rules target distinct seams");
        let mut stream = TableStream::new(&treated, None).unwrap();
        let mut sink = CollectSink::new();
        let lenient = extractor
            .transform_stream_lenient(&mut stream, &mut sink)
            .unwrap();
        (lenient, sink.into_parts())
    };
    let (outcome, (hvs, labels)) = run_lenient();
    assert_eq!(outcome.report.total(), treated.n_rows());
    assert_eq!(
        outcome.report.kept() + outcome.report.quarantined(),
        outcome.report.total(),
        "quarantine accounting must add up"
    );
    assert_eq!(outcome.report.quarantined(), 3);
    assert_eq!(outcome.absorbed, treated.n_rows() - 3);
    assert_eq!(hvs.len(), outcome.absorbed);
    assert_eq!(labels.len(), outcome.absorbed);

    // Replay is byte-identical: same quarantined rows, same survivors.
    let (outcome2, (hvs2, labels2)) = run_lenient();
    assert_eq!(outcome2.absorbed, outcome.absorbed);
    assert_eq!(hvs2, hvs);
    assert_eq!(labels2, labels);

    // And the survivors match a clean batch encode with the injected
    // rows removed: the fault touches scheduling, never bit patterns.
    let clean = extractor.transform(&treated, None).unwrap();
    let expected: Vec<_> = clean
        .iter()
        .enumerate()
        .filter(|(i, _)| !(10..13).contains(i))
        .map(|(_, hv)| hv.clone())
        .collect();
    assert_eq!(hvs, expected);
}

#[test]
fn injected_failpoints_surface_as_typed_errors() {
    let (_, table) = &cohorts()[1];
    let treated = impute_class_median(table).unwrap();
    let rules = vec![hyperfex_faults::FailRule {
        point: "hdc/loocv_run".to_string(),
        action: hyperfex_faults::FaultAction::Fail,
        after: 0,
        times: None,
    }];
    let _guard = registry::install(&rules).expect("rules target distinct seams");
    let err = HammingModel::new(Dim::new(DIM), 7)
        .evaluate_loocv(&treated)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("hdc/loocv_run"),
        "error must name the failpoint, got: {msg}"
    );
}
