//! Generic cross-validation harness over estimator factories.
//!
//! The paper's Table III reports 10-fold *training* accuracy ("Before
//! looking at the testing performance metrics we analyzed how the training
//! accuracy was impacted"); the harness therefore records both the
//! training accuracy on each fold's train split and the held-out test
//! metrics, so one run regenerates both views.

use crate::metrics::{BinaryMetrics, ConfusionMatrix};
use hyperfex_data::split::stratified_k_fold;
use hyperfex_data::Table;
use hyperfex_ml::{Estimator, Matrix, MlError};
use serde::{Deserialize, Serialize};

/// Aggregate outcome of a k-fold run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CvOutcome {
    /// Mean training accuracy across folds (the paper's Table III value).
    pub train_accuracy: f64,
    /// Mean held-out accuracy across folds.
    pub test_accuracy: f64,
    /// Confusion matrix pooled over all held-out folds.
    pub pooled_confusion: ConfusionMatrix,
    /// Per-fold held-out accuracies.
    pub fold_accuracies: Vec<f64>,
}

impl CvOutcome {
    /// Metrics of the pooled held-out confusion matrix.
    #[must_use]
    pub fn pooled_metrics(&self) -> BinaryMetrics {
        self.pooled_confusion.metrics()
    }
}

/// Runs stratified k-fold cross-validation.
///
/// `features` must be row-aligned with `table` (the feature matrix may be
/// raw columns or encoded hypervectors — the harness is agnostic, which is
/// exactly how the paper swaps inputs per model). `make_model` builds a
/// fresh unfitted estimator per fold.
pub fn cross_validate(
    table: &Table,
    features: &Matrix,
    k: usize,
    seed: u64,
    make_model: &dyn Fn() -> Box<dyn Estimator>,
) -> Result<CvOutcome, MlError> {
    if features.n_rows() != table.n_rows() {
        return Err(MlError::ShapeMismatch {
            expected: format!("{} feature rows", table.n_rows()),
            got: format!("{}", features.n_rows()),
        });
    }
    let folds = stratified_k_fold(table, k, seed).map_err(|e| MlError::InvalidParameter {
        name: "k",
        reason: e.to_string(),
    })?;
    let labels = table.labels();
    let mut train_acc_sum = 0.0;
    let mut fold_accuracies = Vec::with_capacity(folds.len());
    let mut pooled = ConfusionMatrix::default();
    for (train_idx, test_idx) in &folds {
        let x_train = features.select_rows(train_idx);
        let y_train: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
        let x_test = features.select_rows(test_idx);
        let y_test: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();
        let mut model = make_model();
        model.fit(&x_train, &y_train)?;
        train_acc_sum += model.accuracy(&x_train, &y_train)?;
        let predictions = model.predict(&x_test)?;
        let fold_cm = ConfusionMatrix::from_labels(&y_test, &predictions)?;
        fold_accuracies.push(fold_cm.metrics().accuracy);
        pooled = pooled.merged(&fold_cm);
    }
    Ok(CvOutcome {
        train_accuracy: train_acc_sum / folds.len() as f64,
        test_accuracy: fold_accuracies.iter().sum::<f64>() / fold_accuracies.len() as f64,
        pooled_confusion: pooled,
        fold_accuracies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperfex_data::{ColumnSpec, Table};
    use hyperfex_ml::prelude::*;

    fn dataset() -> (Table, Matrix) {
        // 60 rows, two separable clusters.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            rows.push(vec![i as f64 * 0.1, 1.0]);
            labels.push(0);
            rows.push(vec![10.0 + i as f64 * 0.1, 0.0]);
            labels.push(1);
        }
        let table = Table::new(
            vec![ColumnSpec::continuous("a"), ColumnSpec::continuous("b")],
            rows.clone(),
            labels,
        )
        .unwrap();
        let features = Matrix::from_rows_f64(&rows).unwrap();
        (table, features)
    }

    #[test]
    fn separable_data_scores_high_on_both_views() {
        let (table, features) = dataset();
        let outcome = cross_validate(&table, &features, 10, 42, &|| {
            Box::new(DecisionTreeClassifier::new(TreeParams::default()))
        })
        .unwrap();
        assert!(outcome.train_accuracy > 0.99);
        assert!(outcome.test_accuracy > 0.95);
        assert_eq!(outcome.fold_accuracies.len(), 10);
        assert_eq!(outcome.pooled_confusion.total(), 60);
        assert!(outcome.pooled_metrics().f1 > 0.95);
    }

    #[test]
    fn deterministic_per_seed() {
        let (table, features) = dataset();
        let run = |seed| {
            cross_validate(&table, &features, 5, seed, &|| {
                Box::new(RandomForestClassifier::new(RandomForestParams {
                    n_estimators: 5,
                    ..RandomForestParams::default()
                }))
            })
            .unwrap()
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a.fold_accuracies, b.fold_accuracies);
    }

    #[test]
    fn misaligned_features_rejected() {
        let (table, _) = dataset();
        let wrong = Matrix::zeros(3, 2);
        assert!(cross_validate(&table, &wrong, 5, 0, &|| {
            Box::new(DecisionTreeClassifier::new(TreeParams::default()))
        })
        .is_err());
    }

    #[test]
    fn invalid_k_propagates() {
        let (table, features) = dataset();
        assert!(cross_validate(&table, &features, 1, 0, &|| {
            Box::new(DecisionTreeClassifier::new(TreeParams::default()))
        })
        .is_err());
    }
}
