//! Distillation Pareto sweep: accuracy vs predict latency across
//! `{full/10, full/5, 2·full/5, full}` bits × `{ranked, random}` bit
//! selections on both cohorts, written to `reports/pareto.{json,txt}`.
//!
//! With `--gate` the binary doubles as the CI distillation gate: the
//! ranked selection at `full/5` bits (2,000 at paper scale) must stay
//! within 1.0 accuracy point of the full-width LOOCV run, and some
//! qualifying ranked selection must reach a 5× measured predict-latency
//! speedup — on *both* cohorts, or the process exits nonzero.

use hyperfex::experiments::distill::{self, GateOutcome, ParetoSweep};
use hyperfex_experiments::{fail, Cli};
use serde::Serialize;
use std::path::Path;
use std::process::exit;

/// Accuracy budget for the gate width, in percentage points.
const GATE_MAX_DROP_PTS: f64 = 1.0;
/// Measured predict-latency speedup floor for the gate.
const GATE_MIN_SPEEDUP: f64 = 5.0;

/// The whole artifact written to `reports/pareto.json`.
#[derive(Debug, Serialize)]
struct ParetoArtifact {
    full_dim: usize,
    seed: u64,
    gate_bits: usize,
    gate_max_drop_pts: f64,
    gate_min_speedup: f64,
    sweeps: Vec<ParetoSweep>,
    gates: Vec<GateOutcome>,
}

fn main() {
    let cli = Cli::parse("pareto_distill");
    let datasets = cli.datasets().unwrap_or_else(|e| fail(e));
    let full = cli.config.dim;
    let dims = [
        (full / 10).max(1),
        (full / 5).max(1),
        (full * 2 / 5).max(1),
        full,
    ];
    let gate_bits = dims[1];
    let timing_repeats = cli.config.repeats.max(5);

    let mut sweeps = Vec::new();
    let mut gates = Vec::new();
    let mut rendered = String::new();
    for (label, table) in [("Pima R", &datasets.pima_r), ("Sylhet", &datasets.sylhet)] {
        let sweep = distill::pareto_sweep(
            table,
            cli.config.dim(),
            &dims,
            cli.config.seed,
            label,
            timing_repeats,
        )
        .unwrap_or_else(|e| fail(e));
        let report = distill::pareto_report(&sweep).render();
        println!("{report}");
        rendered.push_str(&report);
        rendered.push('\n');
        gates.push(distill::gate(
            &sweep,
            gate_bits,
            GATE_MAX_DROP_PTS,
            GATE_MIN_SPEEDUP,
        ));
        sweeps.push(sweep);
    }

    for outcome in &gates {
        let verdict = if outcome.pass { "PASS" } else { "FAIL" };
        let line = format!("gate [{verdict}] {}: {}", outcome.dataset, outcome.detail);
        println!("{line}");
        rendered.push_str(&line);
        rendered.push('\n');
    }

    let artifact = ParetoArtifact {
        full_dim: full,
        seed: cli.config.seed,
        gate_bits,
        gate_max_drop_pts: GATE_MAX_DROP_PTS,
        gate_min_speedup: GATE_MIN_SPEEDUP,
        sweeps,
        gates,
    };
    let out_dir = cli
        .out_dir
        .clone()
        .unwrap_or_else(|| Path::new("reports").to_path_buf());
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        exit(1);
    }
    let json = serde_json::to_string_pretty(&artifact).unwrap_or_else(|e| {
        eprintln!("serialising the pareto artifact failed: {e}");
        exit(1);
    });
    for (name, body) in [("pareto.json", &json), ("pareto.txt", &rendered)] {
        let path = out_dir.join(name);
        match std::fs::write(&path, body) {
            Ok(()) => println!("(written to {})", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                exit(1);
            }
        }
    }

    if cli.gate && !artifact.gates.iter().all(|g| g.pass) {
        eprintln!("distillation gate failed");
        exit(1);
    }
}
