//! Ablations beyond the paper's tables:
//!
//! * **Dimensionality sweep** — §II remarks that 20k/30k bits showed "not
//!   much improvement" over 10k in informal experiments; this makes the
//!   experiment formal (accuracy and encode+classify wall time per
//!   dimensionality).
//! * **Classifier variants** — 1-NN vs k-NN vs bundled-centroid (with and
//!   without retraining), quantifying the design choice the paper made in
//!   §II-C.
//! * **Backend comparison** — binary majority bundling vs exact bipolar
//!   accumulation (§II mentions ternary/integer hypervectors as
//!   alternatives).

use crate::error::HyperfexError;
use crate::extractor::HdcFeatureExtractor;
use crate::hamming::HammingModel;
use hyperfex_data::Table;
use hyperfex_eval::report::{pct, TableReport};
use hyperfex_hdc::binary::Dim;
use hyperfex_hdc::bipolar::{BipolarAccumulator, BipolarHypervector};
use hyperfex_hdc::classify::{CentroidClassifier, LeaveOneOut};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One dimensionality sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DimSweepPoint {
    /// Hypervector bits.
    pub dim: usize,
    /// Hamming LOOCV accuracy.
    pub accuracy: f64,
    /// Wall time (encode + LOOCV) in milliseconds.
    pub millis: f64,
}

/// Sweeps Hamming LOOCV accuracy and cost over dimensionalities.
pub fn dimensionality_sweep(
    table: &Table,
    dims: &[usize],
    seed: u64,
) -> Result<Vec<DimSweepPoint>, HyperfexError> {
    let mut out = Vec::with_capacity(dims.len());
    for &d in dims {
        let start = Instant::now();
        let outcome = HammingModel::new(Dim::new(d), seed).evaluate_loocv(table)?;
        let millis = start.elapsed().as_secs_f64() * 1e3;
        out.push(DimSweepPoint {
            dim: d,
            accuracy: outcome.accuracy(),
            millis,
        });
    }
    Ok(out)
}

/// Renders a sweep as a report table.
#[must_use]
pub fn sweep_report(points: &[DimSweepPoint], dataset_label: &str) -> TableReport {
    let mut t = TableReport::new(
        format!("Dimensionality ablation — Hamming LOOCV on {dataset_label}"),
        &["Bits", "Accuracy", "Wall time (ms)"],
    );
    for p in points {
        t.push_row(vec![
            p.dim.to_string(),
            pct(p.accuracy),
            format!("{:.1}", p.millis),
        ]);
    }
    t
}

/// One encoding-resolution sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolutionPoint {
    /// Number of quantization levels (`None` = the paper's continuous
    /// formula encoding).
    pub levels: Option<usize>,
    /// Hamming LOOCV accuracy.
    pub accuracy: f64,
}

/// Sweeps Hamming LOOCV accuracy over encoding resolutions: how many
/// discrete value levels does the clinical pipeline actually need? (The
/// HDC literature's answer — surprisingly few — is a design margin the
/// paper's formula encoding leaves implicit.)
pub fn resolution_sweep(
    table: &Table,
    dim: Dim,
    levels: &[usize],
    seed: u64,
) -> Result<Vec<ResolutionPoint>, HyperfexError> {
    let labels = table.labels();
    let mut out = Vec::with_capacity(levels.len() + 1);
    for &l in levels {
        let mut extractor = HdcFeatureExtractor::new(dim, seed).with_levels(l);
        let hvs = extractor.fit_transform(table)?;
        let accuracy = LeaveOneOut::new().run(&hvs, labels)?.accuracy();
        out.push(ResolutionPoint {
            levels: Some(l),
            accuracy,
        });
    }
    let mut extractor = HdcFeatureExtractor::new(dim, seed);
    let hvs = extractor.fit_transform(table)?;
    out.push(ResolutionPoint {
        levels: None,
        accuracy: LeaveOneOut::new().run(&hvs, labels)?.accuracy(),
    });
    Ok(out)
}

/// Accuracy of the HDC classifier variants on one dataset (LOOCV for the
/// k-NN family; train-on-all/evaluate-on-all for prototypes, which is the
/// standard HDC-literature protocol for centroid models on small data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantAblation {
    /// 1-NN Hamming (the paper's model).
    pub one_nn: f64,
    /// 3-NN Hamming.
    pub three_nn: f64,
    /// 5-NN Hamming.
    pub five_nn: f64,
    /// Single-pass bundled class prototypes.
    pub centroid: f64,
    /// Prototypes after perceptron-style retraining.
    pub centroid_retrained: f64,
}

/// Runs the classifier-variant ablation.
pub fn classifier_variants(
    table: &Table,
    dim: Dim,
    seed: u64,
) -> Result<VariantAblation, HyperfexError> {
    let mut extractor = HdcFeatureExtractor::new(dim, seed);
    let hvs = extractor.fit_transform(table)?;
    let labels = table.labels();
    let knn = |k: usize| -> Result<f64, HyperfexError> {
        Ok(LeaveOneOut::with_k(k)?.run(&hvs, labels)?.accuracy())
    };
    let mut centroid = CentroidClassifier::new();
    centroid.fit(&hvs, labels)?;
    let acc = |c: &CentroidClassifier| -> Result<f64, HyperfexError> {
        let predictions = c.predict_batch(&hvs)?;
        let correct = predictions
            .iter()
            .zip(labels)
            .filter(|(p, l)| p == l)
            .count();
        Ok(correct as f64 / labels.len() as f64)
    };
    let single_pass = acc(&centroid)?;
    centroid.retrain(&hvs, labels, 20)?;
    let retrained = acc(&centroid)?;
    Ok(VariantAblation {
        one_nn: knn(1)?,
        three_nn: knn(3)?,
        five_nn: knn(5)?,
        centroid: single_pass,
        centroid_retrained: retrained,
    })
}

/// Distance-metric comparison (§II-C: "While euclidean distance could
/// also be used, computing hamming distances on binary vectors is more
/// straightforward"): LOOCV 1-NN accuracy under Hamming on hypervectors vs
/// Euclidean on raw features vs Euclidean on min-max-scaled features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistanceComparison {
    /// Hamming 1-NN on hypervectors (the paper's model).
    pub hamming_hv: f64,
    /// Euclidean 1-NN on raw features.
    pub euclidean_raw: f64,
    /// Euclidean 1-NN on min-max-scaled features.
    pub euclidean_scaled: f64,
}

/// Runs the distance-metric comparison.
pub fn distance_metrics(
    table: &Table,
    dim: Dim,
    seed: u64,
) -> Result<DistanceComparison, HyperfexError> {
    let hamming_hv = HammingModel::new(dim, seed)
        .evaluate_loocv(table)?
        .accuracy();

    let euclidean_loocv = |x: &hyperfex_ml::Matrix| -> f64 {
        let labels = table.labels();
        let n = x.n_rows();
        let mut correct = 0usize;
        for i in 0..n {
            let mut best = (f32::INFINITY, 0usize);
            for j in 0..n {
                if j == i {
                    continue;
                }
                let d = hyperfex_ml::Matrix::squared_distance(x.row(i), x.row(j));
                if d < best.0 {
                    best = (d, j);
                }
            }
            if labels[best.1] == labels[i] {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    };

    let raw = crate::experiments::raw_features(table)?;
    let mut scaler = hyperfex_ml::preprocessing::MinMaxScaler::new();
    let scaled = scaler.fit_transform(&raw)?;
    Ok(DistanceComparison {
        hamming_hv,
        euclidean_raw: euclidean_loocv(&raw),
        euclidean_scaled: euclidean_loocv(&scaled),
    })
}

/// Agreement rate between binary majority bundling (tie → 1) and exact
/// bipolar sign accumulation (tie → +1) when bundling the same per-feature
/// codes. The two backends can only disagree on tie bits of even-arity
/// records, so the agreement quantifies how much information the binary
/// tie rule actually loses on a real schema.
pub fn backend_agreement(table: &Table, dim: Dim, seed: u64) -> Result<f64, HyperfexError> {
    let mut extractor = HdcFeatureExtractor::new(dim, seed);
    extractor.fit(table, None)?;
    let mut agree_bits = 0usize;
    let mut total_bits = 0usize;
    for i in 0..table.n_rows() {
        if table.row_has_missing(i) {
            continue;
        }
        let binary_bundle = extractor
            .transform(table, Some(&[i]))?
            .into_iter()
            .next()
            .ok_or_else(|| {
                HyperfexError::Pipeline(
                    "extractor returned no hypervector for a one-row transform".into(),
                )
            })?;
        let features = extractor.feature_hypervectors(table, i)?;
        let mut acc = BipolarAccumulator::new(dim);
        for f in &features {
            acc.push(&BipolarHypervector::from_binary(f))?;
        }
        let bipolar_bundle = acc.finish()?.to_binary();
        agree_bits += dim.get() - binary_bundle.try_hamming(&bipolar_bundle)?;
        total_bits += dim.get();
    }
    Ok(agree_bits as f64 / total_bits.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperfex_data::sylhet::{self, SylhetConfig};

    fn cohort() -> Table {
        sylhet::generate(&SylhetConfig {
            n_positive: 40,
            n_negative: 30,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn sweep_accuracy_saturates_with_dimensionality() {
        let table = cohort();
        let points = dimensionality_sweep(&table, &[64, 512, 2_048], 3).unwrap();
        assert_eq!(points.len(), 3);
        // Accuracy at 2k bits should be at least that of 64 bits (noise
        // floor) and runtime should grow with dimensionality.
        assert!(points[2].accuracy >= points[0].accuracy - 0.05);
        assert!(points[2].millis > 0.0);
        let report = sweep_report(&points, "mini-Sylhet");
        assert_eq!(report.rows.len(), 3);
    }

    #[test]
    fn resolution_sweep_converges_to_continuous() {
        // Use a Pima-style continuous cohort (quantization is a no-op on
        // the mostly-binary Sylhet schema).
        let pima = hyperfex_data::pima::generate(&hyperfex_data::pima::PimaConfig {
            n_negative: 60,
            n_positive: 40,
            complete_cases: (50, 35),
            ..Default::default()
        })
        .unwrap();
        let table = hyperfex_data::impute::drop_missing(&pima);
        let points = resolution_sweep(&table, Dim::new(1_024), &[2, 16, 128], 5).unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[3].levels, None);
        for p in &points {
            assert!((0.0..=1.0).contains(&p.accuracy), "{p:?}");
        }
        // High-resolution quantization should track the continuous encoder
        // closely; 2 levels loses information.
        let fine = points[2].accuracy;
        let continuous = points[3].accuracy;
        assert!(
            (fine - continuous).abs() < 0.12,
            "128 levels ({fine}) should be near continuous ({continuous})"
        );
    }

    #[test]
    fn variants_are_all_above_chance() {
        let table = cohort();
        let v = classifier_variants(&table, Dim::new(1_024), 7).unwrap();
        for (name, acc) in [
            ("1nn", v.one_nn),
            ("3nn", v.three_nn),
            ("5nn", v.five_nn),
            ("centroid", v.centroid),
            ("retrained", v.centroid_retrained),
        ] {
            assert!(acc > 0.55, "{name} accuracy {acc}");
        }
        assert!(v.centroid_retrained >= v.centroid - 1e-9);
    }

    #[test]
    fn distance_comparison_runs_and_hamming_is_competitive() {
        let table = cohort();
        let c = distance_metrics(&table, Dim::new(1_024), 3).unwrap();
        for v in [c.hamming_hv, c.euclidean_raw, c.euclidean_scaled] {
            assert!((0.0..=1.0).contains(&v));
        }
        // Hamming on hypervectors should at least rival Euclidean 1-NN on
        // the raw mixed-scale features (where age dominates the metric).
        assert!(
            c.hamming_hv >= c.euclidean_raw - 0.05,
            "hamming {} vs euclidean-raw {}",
            c.hamming_hv,
            c.euclidean_raw
        );
    }

    #[test]
    fn backends_agree_exactly_including_ties() {
        // Both backends resolve ties toward 1, so majority bundling and
        // exact bipolar accumulation of the same feature codes must agree
        // on every bit — this pins down the equivalence the bipolar module
        // claims.
        let table = cohort();
        let agreement = backend_agreement(&table, Dim::new(512), 1).unwrap();
        assert!(
            (agreement - 1.0).abs() < 1e-12,
            "agreement {agreement} should be exactly 1"
        );
    }
}
