//! Running-time experiment (§III-A of the paper, prose → table).
//!
//! The paper reports three timing observations rather than a table:
//!
//! 1. the Sequential NN costs about the same per epoch on raw features and
//!    on hypervectors (≈10 ms/epoch on their machine);
//! 2. "LGBM, XGBoost and CatBoost see a major increase in computing time
//!    when using hypervectors (over 10x)";
//! 3. the remaining models show no significant difference, and
//!    hypervector construction time is excluded.
//!
//! This experiment measures wall-clock fit(+predict) time per model on
//! both representations and prints the slowdown ratio — the quantity the
//! paper's claims are about. `cargo bench -p hyperfex-bench` provides the
//! statistically rigorous version; this binary gives the one-shot table.

use crate::error::HyperfexError;
use crate::experiments::{hv_features, raw_features, Datasets, ExperimentConfig};
use crate::models::{make_model, PAPER_MODELS};
use hyperfex_eval::report::TableReport;
use hyperfex_ml::nn::{SequentialNn, SequentialNnParams};
use hyperfex_ml::{Estimator, Matrix};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One model's timing pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingRow {
    /// Model label.
    pub model: String,
    /// Fit+predict seconds on raw features.
    pub features_secs: f64,
    /// Fit+predict seconds on hypervectors.
    pub hypervectors_secs: f64,
}

impl TimingRow {
    /// Hypervector slowdown factor.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.features_secs > 0.0 {
            self.hypervectors_secs / self.features_secs
        } else {
            f64::INFINITY
        }
    }
}

/// Full timing result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimingResult {
    /// Per-model rows.
    pub rows: Vec<TimingRow>,
    /// Per-epoch NN seconds `(features, hypervectors)`.
    pub nn_epoch_secs: (f64, f64),
    /// Seconds to encode the whole cohort (the cost the paper excludes).
    pub encoding_secs: f64,
}

fn time_fit(model: &mut dyn Estimator, x: &Matrix, y: &[usize]) -> Result<f64, HyperfexError> {
    let start = Instant::now();
    model.fit(x, y)?;
    let _ = model.predict(x)?;
    Ok(start.elapsed().as_secs_f64())
}

/// Runs the timing comparison on Pima R.
pub fn run(datasets: &Datasets, config: &ExperimentConfig) -> Result<TimingResult, HyperfexError> {
    let table = &datasets.pima_r;
    let features = raw_features(table)?;
    let encode_start = Instant::now();
    let hv = hv_features(table, config.dim(), config.seed)?;
    let encoding_secs = encode_start.elapsed().as_secs_f64();
    let y = table.labels().to_vec();

    let mut rows = Vec::new();
    for kind in PAPER_MODELS {
        let mut on_features = make_model(kind, config.seed, &config.budget);
        let features_secs = time_fit(on_features.as_mut(), &features, &y)?;
        let mut on_hv = make_model(kind, config.seed, &config.budget);
        let hypervectors_secs = time_fit(on_hv.as_mut(), &hv, &y)?;
        rows.push(TimingRow {
            model: kind.label().to_string(),
            features_secs,
            hypervectors_secs,
        });
    }

    // NN per-epoch: fixed 3 epochs, no early stop, divide by 3.
    let nn_time = |x: &Matrix| -> Result<f64, HyperfexError> {
        let mut nn = SequentialNn::new(SequentialNnParams {
            max_epochs: 3,
            patience: 4,
            seed: config.seed,
            ..SequentialNnParams::default()
        });
        let start = Instant::now();
        nn.fit(x, &y)?;
        Ok(start.elapsed().as_secs_f64() / nn.epochs_run().max(1) as f64)
    };
    let nn_epoch_secs = (nn_time(&features)?, nn_time(&hv)?);

    Ok(TimingResult {
        rows,
        nn_epoch_secs,
        encoding_secs,
    })
}

impl TimingResult {
    /// The boosted-family mean slowdown (the paper's ">10x" subjects).
    #[must_use]
    pub fn boosted_mean_ratio(&self) -> f64 {
        let boosted: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| matches!(r.model.as_str(), "XGBoost" | "CatBoost" | "LGBM"))
            .map(TimingRow::ratio)
            .collect();
        boosted.iter().sum::<f64>() / boosted.len().max(1) as f64
    }

    /// Renders the report.
    #[must_use]
    pub fn to_report(&self, dim: usize) -> TableReport {
        let mut t = TableReport::new(
            format!(
                "Running time on Pima R, {dim}-bit hypervectors (paper §III-A: boosted trees >10x slower on HVs; NN per-epoch similar)"
            ),
            &["Model", "Features (s)", "Hypervectors (s)", "Slowdown"],
        );
        for row in &self.rows {
            t.push_row(vec![
                row.model.clone(),
                format!("{:.3}", row.features_secs),
                format!("{:.3}", row.hypervectors_secs),
                format!("{:.1}x", row.ratio()),
            ]);
        }
        t.push_row(vec![
            "Sequential NN (per epoch)".into(),
            format!("{:.4}", self.nn_epoch_secs.0),
            format!("{:.4}", self.nn_epoch_secs.1),
            format!(
                "{:.1}x",
                self.nn_epoch_secs.1 / self.nn_epoch_secs.0.max(1e-12)
            ),
        ]);
        t.push_row(vec![
            "(encoding, excluded by paper)".into(),
            "-".into(),
            format!("{:.3}", self.encoding_secs),
            "-".into(),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperfex_data::sylhet::{self, SylhetConfig};

    #[test]
    fn timing_rows_cover_all_models_and_are_positive() {
        let tiny = sylhet::generate(&SylhetConfig {
            n_positive: 40,
            n_negative: 30,
            ..Default::default()
        })
        .unwrap();
        let datasets = Datasets {
            pima_r: tiny.clone(),
            pima_m: tiny.clone(),
            sylhet: tiny,
        };
        let config = ExperimentConfig {
            dim: 256,
            budget: crate::models::ModelBudget {
                ensemble_scale: 0.05,
                nn_max_epochs: 5,
            },
            ..ExperimentConfig::quick()
        };
        let result = run(&datasets, &config).unwrap();
        assert_eq!(result.rows.len(), 9);
        for row in &result.rows {
            assert!(row.features_secs > 0.0, "{row:?}");
            assert!(row.hypervectors_secs > 0.0, "{row:?}");
        }
        assert!(result.encoding_secs > 0.0);
        assert!(result.boosted_mean_ratio() > 0.0);
        let report = result.to_report(256);
        assert_eq!(report.rows.len(), 11);
    }
}
