//! The substrate the paper's intro invokes: Kanerva's sparse distributed
//! memory and permutation-based sequence encoding. Stores patient
//! hypervectors in an SDM, corrupts them, and recovers them with the
//! iterative cleanup loop; then shows n-gram encoding distinguishing
//! symptom *histories* that contain the same symptoms in different orders.
//!
//! ```sh
//! cargo run --release -p hyperfex --example associative_memory
//! ```

use hyperfex::prelude::*;
use hyperfex_hdc::encoding::NgramEncoder;
use hyperfex_hdc::rng::SplitMix64;
use hyperfex_hdc::sdm::SparseDistributedMemory;

fn main() -> Result<(), HyperfexError> {
    let dim = Dim::new(2_000);

    // --- Part 1: SDM as a record-cleanup memory --------------------------
    // SDM's capacity analysis assumes stored words spread uniformly over
    // the hyperspace. Bundled patient records violate that (they share
    // categorical codes and cluster at distance ≈ 0.3·d), so the right way
    // to archive them is to first *bind* each record with a random patient
    // key: binding is distance-preserving per key but scatters different
    // patients uniformly — giving each record its own neighbourhood.
    let cohort = sylhet::generate(&SylhetConfig {
        n_positive: 30,
        n_negative: 20,
        ..Default::default()
    })?;
    let mut extractor = HdcFeatureExtractor::new(dim, 5);
    let records = extractor.fit_transform(&cohort)?;
    let mut key_rng = SplitMix64::new(1234);
    let keys: Vec<_> = (0..records.len())
        .map(|_| hyperfex_hdc::BinaryHypervector::random(dim, &mut key_rng))
        .collect();
    let hvs: Vec<_> = records
        .iter()
        .zip(&keys)
        .map(|(record, key)| record.bind(key))
        .collect();

    let mut memory = SparseDistributedMemory::with_critical_radius(dim, 2_000, 0.03, 11)
        .map_err(HyperfexError::Hdc)?;
    for hv in &hvs {
        memory.write_auto(hv).map_err(HyperfexError::Hdc)?;
    }
    println!(
        "stored {} key-bound patient hypervectors in an SDM ({} hard locations, radius {})",
        hvs.len(),
        memory.n_locations(),
        memory.radius()
    );

    // Corrupt a record with 6% bit noise — e.g. a partially corrupted
    // transmission from a remote clinic — and recover it.
    let mut rng = SplitMix64::new(99);
    let original = &hvs[7];
    let mut noisy = original.clone();
    for _ in 0..120 {
        noisy.flip(rng.next_bounded(dim.get() as u64) as usize);
    }
    println!(
        "corrupted record 7 with 120 bit flips (noisy distance: {})",
        original.try_hamming(&noisy).unwrap()
    );
    let recovered = memory
        .recall(&noisy, 10)
        .map_err(HyperfexError::Hdc)?
        .expect("cue activates locations");
    println!(
        "after SDM cleanup: distance to original = {} {}",
        original.try_hamming(&recovered).unwrap(),
        if recovered == *original {
            "(exact recovery)"
        } else {
            ""
        }
    );
    // Unbinding with the patient key returns the cleaned clinical record.
    let cleaned_record = recovered.bind(&keys[7]);
    println!(
        "unbound record matches the original clinical record: {}",
        cleaned_record == records[7]
    );

    // --- Part 2: n-gram encoding of symptom histories -------------------
    // Symbol ids: 0 = polyuria onset, 1 = polydipsia onset, 2 = weight
    // loss, 3 = blurred vision. Visit-order matters clinically; n-gram
    // encoding makes it matter geometrically.
    let mut ngram = NgramEncoder::new(dim, 2, 21).map_err(HyperfexError::Hdc)?;
    let progression_a = [0usize, 1, 2, 3]; // classic osmotic-symptom cascade
    let progression_b = [3usize, 2, 1, 0]; // reversed
    let progression_c = [0usize, 1, 2, 2]; // shares the first three visits with A
    let a = ngram
        .encode_sequence(&progression_a)
        .map_err(HyperfexError::Hdc)?;
    let b = ngram
        .encode_sequence(&progression_b)
        .map_err(HyperfexError::Hdc)?;
    let c = ngram
        .encode_sequence(&progression_c)
        .map_err(HyperfexError::Hdc)?;
    println!("\nsymptom-history encoding (bigram bundles):");
    println!(
        "  cascade vs reversed:     normalized distance {:.3} (same symptoms, different order)",
        hyperfex_hdc::similarity::normalized_hamming(&a, &b).map_err(HyperfexError::Hdc)?
    );
    println!(
        "  cascade vs shared-prefix: normalized distance {:.3} (overlapping history)",
        hyperfex_hdc::similarity::normalized_hamming(&a, &c).map_err(HyperfexError::Hdc)?
    );
    Ok(())
}
