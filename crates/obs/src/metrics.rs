//! Counters and fixed-bucket histograms.
//!
//! Both metric kinds are plain-atomic once registered: a counter is one
//! `AtomicU64`, a histogram is a fixed array of `AtomicU64` buckets plus a
//! CAS-updated f64 sum. Neither allocates on the record path.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-bucket histogram.
///
/// `bounds` are ascending, finite upper bounds: bucket `i` counts
/// observations `v <= bounds[i]` (and greater than `bounds[i - 1]`); one
/// extra overflow bucket counts everything above the last bound. Bucket
/// layout is fixed at registration, so recording is a binary search plus
/// one atomic increment.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, stored as f64 bits.
    sum_bits: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given ascending upper bounds.
    #[must_use]
    pub fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, || AtomicU64::new(0));
        Self {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        // lint: relaxed-ok (independent monotone cells; the CAS loop only
        // needs atomicity of the sum word, not ordering against other cells)
        // partition_point finds the first bound >= value, i.e. the lowest
        // bucket whose upper bound admits the value; misses fall into the
        // overflow bucket at index bounds.len().
        let idx = self.bounds.partition_point(|&b| b < value);
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The configured upper bounds (without the implicit overflow bucket).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        self.bounds
    }

    /// Per-bucket counts, overflow bucket last.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        // lint: relaxed-ok (statistical read; counts are monotone)
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        // lint: relaxed-ok (statistical read; count is monotone)
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        // lint: relaxed-ok (statistical read of an atomically-updated word)
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// inside the bucket containing the target rank.
    ///
    /// The lower edge of the first bucket is taken as 0.0 (all workspace
    /// histograms observe non-negative quantities); observations in the
    /// overflow bucket are attributed to the last finite bound. Returns
    /// `None` while the histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let counts = self.bucket_counts();
        // Rank of the target observation, 1-based, clamped into range.
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if seen + c < target {
                seen += c;
                continue;
            }
            let Some(&upper) = self.bounds.get(i) else {
                // Overflow bucket: no finite upper edge to interpolate
                // toward; report the last bound.
                return self.bounds.last().copied();
            };
            let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            let into = (target - seen) as f64 / c.max(1) as f64;
            return Some(lower + (upper - lower) * into);
        }
        self.bounds.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0];

    #[test]
    fn boundary_values_land_in_the_lower_bucket() {
        let h = Histogram::new(BOUNDS);
        // A value exactly equal to an upper bound belongs to that bucket,
        // not the next one.
        h.observe(1.0);
        h.observe(2.0);
        h.observe(4.0);
        h.observe(8.0);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1, 1, 0]);
        // Just above a bound spills into the next bucket.
        h.observe(1.0000001);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1, 0]);
        // Values above the last bound go to the overflow bucket.
        h.observe(8.5);
        h.observe(1e12);
        assert_eq!(h.bucket_counts(), vec![1, 2, 1, 1, 2]);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn zero_and_negative_values_fall_into_the_first_bucket() {
        let h = Histogram::new(BOUNDS);
        h.observe(0.0);
        h.observe(-3.0);
        assert_eq!(h.bucket_counts(), vec![2, 0, 0, 0, 0]);
    }

    #[test]
    fn sum_and_count_track_observations() {
        let h = Histogram::new(BOUNDS);
        for v in [0.5, 1.5, 3.0, 10.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(BOUNDS);
        // 10 observations uniformly inside (1, 2]: all in bucket 1.
        for i in 0..10 {
            h.observe(1.05 + f64::from(i) * 0.09);
        }
        // The whole mass is in bucket (1, 2]; the median interpolates to
        // the middle of that bucket.
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 1.5).abs() <= 0.1, "p50 = {p50}");
        // p100 is the bucket's upper bound, p0+ its lower region.
        assert!((h.quantile(1.0).unwrap() - 2.0).abs() < 1e-9);
        assert!(h.quantile(0.01).unwrap() > 1.0);
    }

    #[test]
    fn quantile_spanning_buckets_follows_cumulative_rank() {
        let h = Histogram::new(BOUNDS);
        // 4 observations <= 1, 4 in (2, 4].
        for _ in 0..4 {
            h.observe(0.5);
        }
        for _ in 0..4 {
            h.observe(3.0);
        }
        // Rank 2 of 8 (p25) is inside the first bucket.
        assert!(h.quantile(0.25).unwrap() <= 1.0);
        // Rank 6 of 8 (p75) is inside the third bucket (2, 4].
        let p75 = h.quantile(0.75).unwrap();
        assert!(p75 > 2.0 && p75 <= 4.0, "p75 = {p75}");
    }

    #[test]
    fn overflow_heavy_quantile_reports_last_bound() {
        let h = Histogram::new(BOUNDS);
        h.observe(100.0);
        h.observe(200.0);
        assert_eq!(h.quantile(0.99).unwrap(), 8.0);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(BOUNDS);
        assert!(h.quantile(0.5).is_none());
        assert!(h.quantile(-0.1).is_none());
        let h2 = Histogram::new(BOUNDS);
        h2.observe(1.0);
        assert!(h2.quantile(1.5).is_none(), "q outside [0, 1] is rejected");
    }
}
