//! Offline vendored subset of the `serde` API.
//!
//! The build container has no network access, so the workspace vendors a
//! miniature serde built around an owned [`value::Value`] tree: types
//! serialize *to* a `Value` and deserialize *from* one, and `serde_json`
//! renders/parses that tree. The derive macros (`serde_derive`) generate the
//! same externally-tagged representation real serde_json would produce for
//! the shapes this workspace uses (named structs, newtype structs, unit and
//! struct enum variants).

pub mod value {
    /// An owned, JSON-shaped data tree.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// JSON boolean.
        Bool(bool),
        /// Signed integer.
        I64(i64),
        /// Unsigned integer.
        U64(u64),
        /// Floating-point number.
        F64(f64),
        /// String.
        Str(String),
        /// Array.
        Seq(Vec<Value>),
        /// Object; insertion-ordered.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up a key in a [`Value::Map`].
        #[must_use]
        pub fn get_field(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
    }
}

pub use value::Value;

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing a type mismatch.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {got:?}"))
    }
}

/// A type that can be represented as a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de {
    //! Deserialization traits (upstream-layout compatibility shim).

    /// Deserializable without borrowing from the input. The vendored
    /// [`crate::Deserialize`] is always owned, so this is a plain alias.
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        u64::from_value(v).and_then(|n| {
            usize::try_from(n).map_err(|_| DeError(format!("{n} out of range for usize")))
        })
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    Value::U64(n) => i64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| DeError(format!("{n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        i64::from_value(v).and_then(|n| {
            isize::try_from(n).map_err(|_| DeError(format!("{n} out of range for isize")))
        })
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            // Real serde_json writes non-finite floats as null; accept the
            // inverse so NaN-bearing tables round-trip.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {n}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError(format!(
                                "expected tuple of {expected}, got {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple sequence", other)),
                }
            }
        }
    )+};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: std::fmt::Display,
    V: Serialize,
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        // Sort for deterministic output (HashMap iteration order is random).
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
