//! The paper's "Sequential NN": dense ReLU layers with a sigmoid output,
//! trained with Adam on binary cross-entropy.
//!
//! Architecture (§II-D): "two dense layers with 32 nodes and a ReLU
//! activation function and binary output layer with a sigmoid activation
//! function", run for up to 1000 epochs with early stopping — "if the loss
//! function doesn't improve across 20 consecutive epochs, the training
//! stops".

mod dense;
mod optimizer;

pub use dense::DenseLayer;
pub use optimizer::Adam;

use crate::error::MlError;
use crate::linalg::Matrix;
use crate::linear::{log_loss, sigmoid};
use crate::traits::{validate_fit_inputs, Estimator, ProbabilisticEstimator};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Early-stopping monitor: stop after `patience` epochs without the loss
/// improving by at least `min_delta`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EarlyStopping {
    /// Number of non-improving epochs tolerated (paper: 20).
    pub patience: usize,
    /// Minimum decrease that counts as an improvement.
    pub min_delta: f64,
    best: f64,
    stall: usize,
}

impl EarlyStopping {
    /// Creates a monitor.
    #[must_use]
    pub fn new(patience: usize, min_delta: f64) -> Self {
        Self {
            patience,
            min_delta,
            best: f64::INFINITY,
            stall: 0,
        }
    }

    /// Feeds one epoch's loss; returns `true` when training should stop.
    pub fn update(&mut self, loss: f64) -> bool {
        if loss < self.best - self.min_delta {
            self.best = loss;
            self.stall = 0;
            false
        } else {
            self.stall += 1;
            self.stall >= self.patience
        }
    }

    /// Best loss observed so far.
    #[must_use]
    pub fn best(&self) -> f64 {
        self.best
    }
}

/// Hyper-parameters for the sequential network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequentialNnParams {
    /// Hidden layer widths (paper: `[32, 32]`).
    pub hidden: Vec<usize>,
    /// Adam learning rate (Keras default 1e-3).
    pub learning_rate: f64,
    /// Mini-batch size (Keras default 32).
    pub batch_size: usize,
    /// Epoch cap (paper: 1000).
    pub max_epochs: usize,
    /// Early-stopping patience (paper: 20).
    pub patience: usize,
    /// Minimum loss decrease that resets patience.
    pub min_delta: f64,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

impl Default for SequentialNnParams {
    fn default() -> Self {
        Self {
            hidden: vec![32, 32],
            learning_rate: 1e-3,
            batch_size: 32,
            max_epochs: 1000,
            patience: 20,
            min_delta: 0.0,
            seed: 0,
        }
    }
}

/// A fitted sequential network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SequentialNn {
    params: SequentialNnParams,
    layers: Vec<DenseLayer>,
    loss_history: Vec<f64>,
    fitted: bool,
}

impl SequentialNn {
    /// Creates an unfitted network.
    #[must_use]
    pub fn new(params: SequentialNnParams) -> Self {
        Self {
            params,
            layers: Vec::new(),
            loss_history: Vec::new(),
            fitted: false,
        }
    }

    /// Per-epoch mean training loss recorded by the last `fit`.
    #[must_use]
    pub fn loss_history(&self) -> &[f64] {
        &self.loss_history
    }

    /// Number of epochs the last `fit` actually ran.
    #[must_use]
    pub fn epochs_run(&self) -> usize {
        self.loss_history.len()
    }

    /// Forward pass producing positive-class probabilities.
    fn forward(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        let mut activations = x.clone();
        let last = self.layers.len() - 1;
        for (li, layer) in self.layers.iter().enumerate() {
            activations = layer.forward(&activations, li != last)?;
        }
        Ok((0..activations.n_rows())
            .map(|i| sigmoid(f64::from(activations.get(i, 0))))
            .collect())
    }

    /// One training epoch over shuffled mini-batches; returns mean loss.
    fn run_epoch(
        &mut self,
        x: &Matrix,
        y: &[usize],
        order: &mut [usize],
        rng: &mut StdRng,
        adam: &mut Adam,
    ) -> Result<f64, MlError> {
        order.shuffle(rng);
        let n = x.n_rows();
        let bs = self.params.batch_size.max(1);
        let mut epoch_loss = 0.0f64;
        for batch in order.chunks(bs) {
            let xb = x.select_rows(batch);
            let yb: Vec<usize> = batch.iter().map(|&i| y[i]).collect();

            // Forward with caches.
            let last = self.layers.len() - 1;
            let mut inputs: Vec<Matrix> = Vec::with_capacity(self.layers.len());
            let mut act = xb;
            let mut preacts: Vec<Matrix> = Vec::with_capacity(self.layers.len());
            for (li, layer) in self.layers.iter().enumerate() {
                inputs.push(act.clone());
                let z = layer.forward(&act, false)?;
                preacts.push(z.clone());
                act = if li != last { DenseLayer::relu(&z) } else { z };
            }

            // Output gradient: dL/dz = p − y (sigmoid + BCE), averaged over
            // the batch.
            let m = batch.len();
            let mut delta = Matrix::zeros(m, 1);
            for (i, &yi) in yb.iter().enumerate() {
                let p = sigmoid(f64::from(act.get(i, 0)));
                epoch_loss += log_loss(p, yi);
                delta.set(i, 0, ((p - yi as f64) / m as f64) as f32);
            }

            // Backward.
            adam.begin_batch();
            for li in (0..self.layers.len()).rev() {
                let is_hidden = li != last;
                let delta_z = if is_hidden {
                    DenseLayer::relu_backward(&delta, &preacts[li])
                } else {
                    delta.clone()
                };
                let (grad_w, grad_b, delta_prev) =
                    self.layers[li].gradients(&inputs[li], &delta_z)?;
                adam.step(li, &mut self.layers[li], &grad_w, &grad_b);
                delta = delta_prev;
            }
        }
        Ok(epoch_loss / n as f64)
    }
}

impl Estimator for SequentialNn {
    fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<(), MlError> {
        let _span = crate::obs::span("ml/nn_fit");
        let n_classes = validate_fit_inputs(x, y)?;
        if n_classes > 2 {
            return Err(MlError::InvalidParameter {
                name: "y",
                reason: "the sequential network supports binary labels only".into(),
            });
        }
        if self.params.hidden.contains(&0) {
            return Err(MlError::InvalidParameter {
                name: "hidden",
                reason: "layer widths must be non-zero".into(),
            });
        }
        if !(self.params.learning_rate.is_finite() && self.params.learning_rate > 0.0) {
            return Err(MlError::InvalidParameter {
                name: "learning_rate",
                reason: "must be positive and finite".into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        // Build layer stack: p → hidden… → 1.
        let mut dims = vec![x.n_cols()];
        dims.extend_from_slice(&self.params.hidden);
        dims.push(1);
        self.layers = dims
            .windows(2)
            .map(|w| DenseLayer::glorot(w[0], w[1], &mut rng))
            .collect();
        let mut adam = Adam::new(self.params.learning_rate, &self.layers);

        let mut order: Vec<usize> = (0..x.n_rows()).collect();
        let mut stopper = EarlyStopping::new(self.params.patience.max(1), self.params.min_delta);
        self.loss_history.clear();
        self.fitted = true;
        for _ in 0..self.params.max_epochs {
            let loss = self.run_epoch(x, y, &mut order, &mut rng, &mut adam)?;
            self.loss_history.push(loss);
            if stopper.update(loss) {
                break;
            }
        }
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<usize>, MlError> {
        Ok(self
            .forward(x)?
            .iter()
            .map(|&p| usize::from(p >= 0.5))
            .collect())
    }

    fn name(&self) -> &'static str {
        "Sequential NN"
    }
}

impl ProbabilisticEstimator for SequentialNn {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        self.forward(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> (Matrix, Vec<usize>) {
        // Nonlinear problem: inside vs outside a circle.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..24 {
            let a = i as f32 * std::f32::consts::TAU / 24.0;
            rows.push(vec![0.4 * a.cos(), 0.4 * a.sin()]);
            y.push(0);
            rows.push(vec![1.6 * a.cos(), 1.6 * a.sin()]);
            y.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn quick_params() -> SequentialNnParams {
        SequentialNnParams {
            hidden: vec![16, 16],
            learning_rate: 0.01,
            max_epochs: 400,
            patience: 50,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn learns_the_ring() {
        let (x, y) = ring();
        let mut nn = SequentialNn::new(quick_params());
        nn.fit(&x, &y).unwrap();
        let acc = nn.accuracy(&x, &y).unwrap();
        assert!(acc >= 0.95, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases_over_training() {
        let (x, y) = ring();
        let mut nn = SequentialNn::new(quick_params());
        nn.fit(&x, &y).unwrap();
        let hist = nn.loss_history();
        assert!(hist.len() > 5);
        let early: f64 = hist[..3].iter().sum::<f64>() / 3.0;
        let late: f64 = hist[hist.len() - 3..].iter().sum::<f64>() / 3.0;
        assert!(
            late < early,
            "late loss {late} should be below early loss {early}"
        );
    }

    #[test]
    fn early_stopping_halts_before_epoch_cap() {
        let (x, y) = ring();
        let mut nn = SequentialNn::new(SequentialNnParams {
            patience: 3,
            min_delta: 10.0, // impossible improvement threshold
            max_epochs: 500,
            ..quick_params()
        });
        nn.fit(&x, &y).unwrap();
        assert!(nn.epochs_run() <= 4, "ran {} epochs", nn.epochs_run());
    }

    #[test]
    fn early_stopping_monitor_logic() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.update(1.0));
        assert!(!es.update(0.5)); // improvement
        assert!(!es.update(0.6)); // stall 1
        assert!(es.update(0.7)); // stall 2 → stop
        assert_eq!(es.best(), 0.5);
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (x, y) = ring();
        let mut nn = SequentialNn::new(quick_params());
        nn.fit(&x, &y).unwrap();
        for p in nn.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = ring();
        let mut a = SequentialNn::new(quick_params());
        let mut b = SequentialNn::new(quick_params());
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn invalid_params_and_unfitted_errors() {
        let (x, y) = ring();
        let mut nn = SequentialNn::new(SequentialNnParams {
            hidden: vec![0],
            ..Default::default()
        });
        assert!(nn.fit(&x, &y).is_err());
        let mut nn = SequentialNn::new(SequentialNnParams {
            learning_rate: 0.0,
            ..Default::default()
        });
        assert!(nn.fit(&x, &y).is_err());
        let nn = SequentialNn::new(SequentialNnParams::default());
        assert_eq!(nn.predict(&x), Err(MlError::NotFitted));
    }

    #[test]
    fn multiclass_rejected() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let mut nn = SequentialNn::new(SequentialNnParams::default());
        assert!(nn.fit(&x, &[0, 1, 2]).is_err());
    }
}
