//! Failpoint scheduling: turns declarative [`FailRule`]s into handlers
//! installed into the `hyperfex-hdc` and `hyperfex-data` failpoint hooks.
//!
//! The hooks themselves are process-global, so chaos tests that install
//! rules must not interleave. [`install`] therefore returns a
//! [`FailpointsGuard`] holding a global lock: concurrent installers
//! serialise, and dropping the guard clears both crates' handlers, so a
//! panicking test cannot leak injected faults into its neighbours.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::{FailRule, FaultAction};

/// Serialises chaos harnesses: the installed handlers are process-global.
static REGISTRY_LOCK: Mutex<()> = Mutex::new(());

/// Rejected failpoint installations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Two rules in one [`install`] call target the same seam. Earlier the
    /// registry accepted this silently and only the first matching rule
    /// ever fired (while the shadowed rule still consumed hit-window
    /// state), which made chaos plans ambiguous; it is now a typed error.
    DuplicateSeam {
        /// The seam both rules target.
        point: String,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DuplicateSeam { point } => write!(
                f,
                "failpoint seam `{point}` is registered twice in one guard scope — merge the \
                 rules; only the first would ever fire"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

struct RuleState {
    rule: FailRule,
    hits: AtomicUsize,
}

struct RuleSet {
    rules: Vec<RuleState>,
}

impl RuleSet {
    /// First matching rule wins; every matching rule counts the hit.
    fn evaluate(&self, point: &str) -> Option<FaultAction> {
        let mut fired = None;
        for state in self.rules.iter().filter(|s| s.rule.point == point) {
            let hit = state.hits.fetch_add(1, Ordering::SeqCst);
            let in_window = hit >= state.rule.after
                && state
                    .rule
                    .times
                    .is_none_or(|t| hit < state.rule.after.saturating_add(t));
            if in_window && fired.is_none() {
                fired = Some(state.rule.action.clone());
            }
        }
        fired
    }
}

/// Keeps the installed rules alive and holds the global serialisation
/// lock. Dropping it uninstalls the handlers from both substrate crates.
pub struct FailpointsGuard {
    _serial: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for FailpointsGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailpointsGuard").finish_non_exhaustive()
    }
}

impl Drop for FailpointsGuard {
    fn drop(&mut self) {
        hyperfex_hdc::failpoint::clear();
        hyperfex_data::failpoint::clear();
    }
}

/// Installs `rules` into the failpoint hooks of both substrate crates and
/// returns a guard that uninstalls them on drop.
///
/// Each rule starts firing on its `after`-th evaluation of its point
/// (0-based) and fires `times` evaluations (forever when `None`). Hit
/// counters are private to this installation, so two installs of the same
/// rules behave identically — a requirement for byte-identical chaos
/// replays.
///
/// Returns [`RegistryError::DuplicateSeam`] when two rules target the same
/// seam: the shadowed rule could never fire, so accepting it would make
/// the plan silently ambiguous.
pub fn install(rules: &[FailRule]) -> Result<FailpointsGuard, RegistryError> {
    for (i, rule) in rules.iter().enumerate() {
        if rules[..i].iter().any(|prior| prior.point == rule.point) {
            return Err(RegistryError::DuplicateSeam {
                point: rule.point.clone(),
            });
        }
    }
    let serial = REGISTRY_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let set = Arc::new(RuleSet {
        rules: rules
            .iter()
            .map(|rule| RuleState {
                rule: rule.clone(),
                hits: AtomicUsize::new(0),
            })
            .collect(),
    });

    let hdc_set = Arc::clone(&set);
    hyperfex_hdc::failpoint::install(Arc::new(move |point: &str| {
        hdc_set.evaluate(point).map(|action| match action {
            FaultAction::Fail => hyperfex_hdc::failpoint::FaultAction::Fail,
            FaultAction::Delay(ms) => hyperfex_hdc::failpoint::FaultAction::Delay(ms),
        })
    }));
    let data_set = Arc::clone(&set);
    hyperfex_data::failpoint::install(Arc::new(move |point: &str| {
        data_set.evaluate(point).map(|action| match action {
            FaultAction::Fail => hyperfex_data::failpoint::FaultAction::Fail,
            FaultAction::Delay(ms) => hyperfex_data::failpoint::FaultAction::Delay(ms),
        })
    }));
    Ok(FailpointsGuard { _serial: serial })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_in_their_window_and_clear_on_drop() {
        let rules = vec![FailRule {
            point: "hdc/test_seam".to_string(),
            action: FaultAction::Fail,
            after: 1,
            times: Some(2),
        }];
        {
            let _guard = install(&rules).unwrap();
            // Hit 0 is before the window; hits 1 and 2 fire; hit 3 is after.
            assert!(hyperfex_hdc::failpoint::check("hdc/test_seam").is_ok());
            assert!(hyperfex_hdc::failpoint::check("hdc/test_seam").is_err());
            assert!(hyperfex_hdc::failpoint::check("hdc/test_seam").is_err());
            assert!(hyperfex_hdc::failpoint::check("hdc/test_seam").is_ok());
            // Other points are untouched.
            assert!(hyperfex_hdc::failpoint::check("hdc/other").is_ok());
        }
        // Guard dropped: the seam is a no-op again.
        assert!(hyperfex_hdc::failpoint::check("hdc/test_seam").is_ok());
    }

    #[test]
    fn rules_reach_both_substrate_crates() {
        let rules = vec![
            FailRule {
                point: "data/test_seam".to_string(),
                action: FaultAction::Fail,
                after: 0,
                times: None,
            },
            FailRule {
                point: "hdc/test_seam".to_string(),
                action: FaultAction::Delay(0),
                after: 0,
                times: None,
            },
        ];
        let _guard = install(&rules).unwrap();
        assert!(hyperfex_data::failpoint::check("data/test_seam").is_err());
        // Delay(0) proceeds without failing.
        assert!(hyperfex_hdc::failpoint::check("hdc/test_seam").is_ok());
    }

    #[test]
    fn reinstalling_resets_hit_counters() {
        let rules = vec![FailRule {
            point: "hdc/test_seam".to_string(),
            action: FaultAction::Fail,
            after: 0,
            times: Some(1),
        }];
        for _ in 0..2 {
            let _guard = install(&rules).unwrap();
            assert!(hyperfex_hdc::failpoint::check("hdc/test_seam").is_err());
            assert!(hyperfex_hdc::failpoint::check("hdc/test_seam").is_ok());
        }
    }

    #[test]
    fn duplicate_seam_in_one_scope_is_a_typed_error() {
        let mk = |after| FailRule {
            point: "hdc/test_seam".to_string(),
            action: FaultAction::Fail,
            after,
            times: Some(1),
        };
        let err = install(&[mk(0), mk(5)]).unwrap_err();
        assert_eq!(
            err,
            RegistryError::DuplicateSeam {
                point: "hdc/test_seam".to_string()
            }
        );
        // Nothing was installed: the rejected rules never reach the hooks.
        assert!(hyperfex_hdc::failpoint::check("hdc/test_seam").is_ok());
        // Distinct seams are still fine.
        let mut other = mk(0);
        other.point = "hdc/other_seam".to_string();
        assert!(install(&[mk(0), other]).is_ok());
    }
}
