//! Degradation curves under storage bit faults: the HDC fault-tolerance
//! claim, measured.
//!
//! For each dataset the sweep encodes every record once per
//! dimensionality, then for each bit-flip rate *p* corrupts a fresh copy
//! of the hypervector store with [`hyperfex_faults::storage::degrade_store`]
//! and reruns Hamming 1-NN LOOCV. The raw-feature baselines (logistic
//! regression, random forest) face the same adversary on their own
//! storage format: each `f32` feature word has its bits flipped at the
//! same rate *p*. Non-finite values produced by flipped exponent bits are
//! sanitised to 0.0 — float models have no quarantine path, which is part
//! of the comparison.
//!
//! Rate 0 must reproduce the uninjected LOOCV confusion counts
//! bit-exactly (the injector draws no randomness at p = 0); the shape of
//! the curve — smooth decay toward the ~0.5 chance floor at p = 0.5 —
//! is regression-tested in `tests/reproduction_shapes.rs`.

use hyperfex::experiments::{raw_features, ExperimentConfig};
use hyperfex::models::{make_model, ModelKind};
use hyperfex::prelude::*;
use hyperfex_eval::cv::cross_validate;
use hyperfex_eval::TableReport;
use hyperfex_experiments::{fail, Cli};
use hyperfex_faults::storage;
use hyperfex_hdc::classify::{LeaveOneOut, LoocvOutcome};
use hyperfex_hdc::rng::SplitMix64;

/// Bit-flip rates swept, from pristine to coin-flip storage.
const RATES: [f64; 11] = [0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5];

const BASELINE_FOLDS: usize = 3;

fn main() {
    let cli = Cli::parse("robustness");
    let datasets = cli.datasets().unwrap_or_else(|e| fail(e));
    // --quick sweeps one small dimensionality; the default matches the
    // issue spec (degradation at 2,000 and 10,000 bits).
    let dims: &[usize] = if cli.config.dim == ExperimentConfig::quick().dim {
        &[512]
    } else {
        &[2_000, 10_000]
    };

    let mut reports = Vec::new();
    for (label, table) in [("Pima R", &datasets.pima_r), ("Syhlet", &datasets.sylhet)] {
        let report = sweep(label, table, dims, &cli).unwrap_or_else(|e| fail(e));
        println!("{}", report.render());
        reports.push(report);
    }
    // Both datasets go into one JSON document (Cli::emit would overwrite
    // the first table with the second).
    if let Some(path) = &cli.json_out {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialise");
        match std::fs::write(path, json) {
            Ok(()) => println!("(json written to {})", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

fn sweep(
    label: &str,
    table: &Table,
    dims: &[usize],
    cli: &Cli,
) -> Result<TableReport, HyperfexError> {
    let seed = cli.config.seed;

    // Encode once per dimensionality; every rate corrupts a fresh copy.
    let mut stores = Vec::new();
    let mut uninjected = Vec::new();
    {
        let _span = hyperfex::obs::span("robustness/encode");
        for &dim in dims {
            let mut extractor = HdcFeatureExtractor::new(Dim::new(dim), seed);
            let hvs = extractor.fit_transform(table)?;
            let clean = LeaveOneOut::new().run(&hvs, table.labels())?;
            uninjected.push(clean);
            stores.push(hvs);
        }
    }

    let mut headers: Vec<String> = vec!["flip rate p".to_string()];
    for &dim in dims {
        headers.push(format!("Hamming acc @{dim}"));
        headers.push(format!("tp/tn/fp/fn @{dim}"));
    }
    headers.push("LogReg acc (raw f32)".to_string());
    headers.push("Forest acc (raw f32)".to_string());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = TableReport::new(
        format!("Robustness: {label} LOOCV accuracy under storage bit flips (seed {seed})"),
        &header_refs,
    );

    let mut row = vec!["uninjected".to_string()];
    for clean in &uninjected {
        row.push(format!("{:.4}", clean.accuracy()));
        row.push(counts(clean));
    }
    row.push("-".to_string());
    row.push("-".to_string());
    report.push_row(row);

    for (ri, &rate) in RATES.iter().enumerate() {
        let mut row = vec![format!("{rate:.3}")];
        {
            let _span = hyperfex::obs::span("robustness/degrade_loocv");
            for (di, hvs) in stores.iter().enumerate() {
                let mut store = hvs.clone();
                // Per-(dim, rate) seed keeps every cell of the sweep
                // independently reproducible.
                let flip_seed = SplitMix64::new(seed)
                    .derive(0xF11A, (di * RATES.len() + ri) as u64)
                    .next_u64();
                storage::degrade_store(&mut store, rate, flip_seed).map_err(HyperfexError::from)?;
                let outcome = LeaveOneOut::new().run(&store, table.labels())?;
                hyperfex::obs::counter_add("robustness/cells_evaluated", 1);
                row.push(format!("{:.4}", outcome.accuracy()));
                row.push(counts(&outcome));
            }
        }
        let _span = hyperfex::obs::span("robustness/baselines");
        for kind in [ModelKind::LogisticRegression, ModelKind::RandomForest] {
            let features = corrupted_raw_features(table, rate, seed ^ 0xF32)?;
            let cv = cross_validate(table, &features, BASELINE_FOLDS, seed, &|| {
                make_model(kind, seed, &cli.config.budget)
            })?;
            row.push(format!("{:.4}", cv.test_accuracy));
        }
        report.push_row(row);
    }
    Ok(report)
}

fn counts(outcome: &LoocvOutcome) -> String {
    match outcome.binary_counts() {
        Some((tp, tn, fp, fn_)) => format!("{tp}/{tn}/{fp}/{fn_}"),
        None => "-".to_string(),
    }
}

/// Raw features with each `f32` storage bit flipped at rate `rate`.
fn corrupted_raw_features(table: &Table, rate: f64, seed: u64) -> Result<Matrix, HyperfexError> {
    let mut rows = table.rows().to_vec();
    let root = SplitMix64::new(seed);
    for (i, row) in rows.iter_mut().enumerate() {
        let mut rng = root.derive(0xF10A7, i as u64);
        for v in row.iter_mut() {
            let mut bits = (*v as f32).to_bits();
            if rate > 0.0 {
                for b in 0..32 {
                    if rng.next_f64() < rate {
                        bits ^= 1u32 << b;
                    }
                }
            }
            let flipped = f32::from_bits(bits);
            // Float models cannot quarantine a NaN/inf cell; sanitise so
            // the baseline keeps running (see module docs).
            *v = if flipped.is_finite() {
                f64::from(flipped)
            } else {
                0.0
            };
        }
    }
    let corrupted = Table::new(table.columns().to_vec(), rows, table.labels().to_vec())?;
    raw_features(&corrupted)
}
