//! Rule 3: vendor hygiene.
//!
//! This repository builds fully offline: every third-party crate is checked
//! in under `vendor/` and reached via path dependencies. The lint walks
//! every `Cargo.toml` in the workspace (root, `crates/*`, `vendor/*`) and
//! rejects anything that would reach for a registry or a remote: `version`,
//! `git` or `registry` keys on dependencies, and `path` values that do not
//! resolve under `vendor/` or `crates/`.
//!
//! The scanner is deliberately a line-level state machine, not a TOML
//! parser — Cargo manifests in this repo are machine-curated and flat, and
//! the linter must stay zero-dependency.

use crate::diag::{Rule, Violation};

/// An in-progress `[dependencies.<name>]` table: dep name, header line, and
/// the `key = value` pairs collected until the next section header.
type DepTable = (String, usize, Vec<(String, String)>);

/// Sections whose entries are dependency specifications.
const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// Checks one manifest. `rel_path` is the workspace-relative path of the
/// `Cargo.toml` (forward slashes); the manifest's directory is derived from
/// it so `path = "../foo"` entries can be resolved lexically.
pub fn check_manifest(rel_path: &str, contents: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let manifest_dir = rel_path.rsplit_once('/').map_or("", |(d, _)| d);
    let mut section: Option<String> = None;
    // For `[dependencies.foo]`-style tables we accumulate keys until the
    // next section header, then judge the whole entry.
    let mut table_dep: Option<DepTable> = None;

    for (idx, raw) in contents.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if let Some((name, at, keys)) = table_dep.take() {
                judge_entry(&mut out, rel_path, manifest_dir, &name, at, &keys);
            }
            let header = line.trim_matches(|c| c == '[' || c == ']').trim();
            if let Some((sec, dep)) = split_dep_table(header) {
                section = Some(sec.to_string());
                table_dep = Some((dep.to_string(), idx + 1, Vec::new()));
            } else {
                section = Some(header.to_string());
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if let Some((_, _, keys)) = table_dep.as_mut() {
            keys.push((key.to_string(), unquote(value).to_string()));
            continue;
        }
        let Some(sec) = section.as_deref() else {
            continue;
        };
        if !DEP_SECTIONS.contains(&sec) {
            continue;
        }
        // Inline entry: `name = "1.0"`, `name = { path = "…" }`,
        // `name = { workspace = true }` or `name.workspace = true`.
        let dep_name = key.split('.').next().unwrap_or(key);
        if key.ends_with(".workspace") && value == "true" {
            continue;
        }
        let keys: Vec<(String, String)> = if value.starts_with('{') {
            value
                .trim_matches(|c| c == '{' || c == '}')
                .split(',')
                .filter_map(|kv| kv.split_once('='))
                .map(|(k, v)| (k.trim().to_string(), unquote(v.trim()).to_string()))
                .collect()
        } else {
            // Bare string value is shorthand for a registry version.
            vec![("version".to_string(), unquote(value).to_string())]
        };
        judge_entry(&mut out, rel_path, manifest_dir, dep_name, idx + 1, &keys);
    }
    if let Some((name, at, keys)) = table_dep.take() {
        judge_entry(&mut out, rel_path, manifest_dir, &name, at, &keys);
    }
    out
}

/// Splits a `dependencies.foo`-style table header into (section, dep name).
fn split_dep_table(header: &str) -> Option<(&str, &str)> {
    for sec in DEP_SECTIONS {
        let prefix = format!("{sec}.");
        if let Some(dep) = header.strip_prefix(prefix.as_str()) {
            if !dep.is_empty() {
                return Some((sec, dep));
            }
        }
    }
    None
}

fn judge_entry(
    out: &mut Vec<Violation>,
    rel_path: &str,
    manifest_dir: &str,
    dep: &str,
    line: usize,
    keys: &[(String, String)],
) {
    if keys.iter().any(|(k, v)| k == "workspace" && v == "true") {
        return;
    }
    for (k, v) in keys {
        match k.as_str() {
            "version" => out.push(violation(
                rel_path,
                line,
                format!("dependency `{dep}` pins registry version `{v}` — this workspace is offline; vendor the crate and use a path dependency"),
            )),
            "git" => out.push(violation(
                rel_path,
                line,
                format!("dependency `{dep}` uses a git source `{v}` — vendor it under vendor/ instead"),
            )),
            "registry" => out.push(violation(
                rel_path,
                line,
                format!("dependency `{dep}` names a registry `{v}` — this workspace is offline"),
            )),
            _ => {}
        }
    }
    let path = keys.iter().find(|(k, _)| k == "path").map(|(_, v)| v);
    match path {
        None => {
            // No path, no workspace inheritance: either a bare version
            // (already flagged above) or an empty spec.
            if !keys.iter().any(|(k, _)| k == "version" || k == "git") {
                out.push(violation(
                    rel_path,
                    line,
                    format!("dependency `{dep}` has neither `workspace = true` nor a `path` — cannot resolve offline"),
                ));
            }
        }
        Some(p) => {
            let resolved = normalize(manifest_dir, p);
            if !(resolved.starts_with("vendor/") || resolved.starts_with("crates/")) {
                out.push(violation(
                    rel_path,
                    line,
                    format!("dependency `{dep}` path `{p}` resolves to `{resolved}`, outside vendor/ and crates/"),
                ));
            }
        }
    }
}

fn violation(rel_path: &str, line: usize, message: String) -> Violation {
    Violation {
        file: rel_path.to_string(),
        line,
        rule: Rule::Vendor,
        message,
        line_text: String::new(),
    }
}

fn unquote(v: &str) -> &str {
    v.trim_matches('"')
}

/// Lexically joins `dir` and `path`, folding `.` and `..` components.
/// Escapes above the workspace root are kept as leading `..` so they fail
/// the `vendor/`/`crates/` prefix test loudly.
fn normalize(dir: &str, path: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for comp in dir.split('/').chain(path.split('/')) {
        match comp {
            "" | "." => {}
            ".." => {
                if matches!(parts.last(), Some(&"..") | None) {
                    parts.push("..");
                } else {
                    parts.pop();
                }
            }
            other => parts.push(other),
        }
    }
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_version_is_flagged() {
        let v = check_manifest("Cargo.toml", "[workspace.dependencies]\nserde = \"1.0\"\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Vendor);
        assert_eq!(v[0].line, 2);
        assert!(v[0].message.contains("registry version"));
    }

    #[test]
    fn git_and_named_registry_sources_are_flagged() {
        let src = "[dependencies]\n\
                   a = { git = \"https://example.com/a\" }\n\
                   b = { registry = \"mirror\", version = \"2\" }\n";
        let v = check_manifest("crates/hdc/Cargo.toml", src);
        assert!(v.iter().any(|x| x.message.contains("git source")));
        assert!(v.iter().any(|x| x.message.contains("names a registry")));
    }

    #[test]
    fn vendored_path_deps_pass() {
        let src = "[workspace.dependencies]\n\
                   rand = { path = \"vendor/rand\" }\n\
                   hyperfex-hdc = { path = \"crates/hdc\" }\n";
        assert!(check_manifest("Cargo.toml", src).is_empty());
    }

    #[test]
    fn relative_paths_resolve_from_the_manifest_dir() {
        let src = "[dependencies]\nserde_derive = { path = \"../serde_derive\" }\n";
        assert!(check_manifest("vendor/serde/Cargo.toml", src).is_empty());
        let escape = "[dependencies]\nx = { path = \"../../elsewhere/x\" }\n";
        let v = check_manifest("vendor/serde/Cargo.toml", escape);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("outside vendor/ and crates/"));
    }

    #[test]
    fn workspace_inheritance_passes_both_spellings() {
        let src = "[dependencies]\n\
                   rand.workspace = true\n\
                   rayon = { workspace = true }\n\
                   [dev-dependencies]\n\
                   proptest = { workspace = true }\n";
        assert!(check_manifest("crates/hdc/Cargo.toml", src).is_empty());
    }

    #[test]
    fn dotted_dep_tables_are_judged_as_a_whole() {
        let src =
            "[dependencies.rand]\npath = \"../../vendor/rand\"\n\n[package.metadata]\nx = 1\n";
        assert!(check_manifest("crates/hdc/Cargo.toml", src).is_empty());
        let bad = "[dependencies.rand]\nversion = \"0.8\"\n";
        let v = check_manifest("crates/hdc/Cargo.toml", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let src = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n\n[features]\ndefault = []\n";
        assert!(check_manifest("crates/hdc/Cargo.toml", src).is_empty());
    }
}
