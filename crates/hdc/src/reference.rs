//! Scalar (bit-at-a-time) reference implementations of the word-level
//! kernels.
//!
//! Every routine here is the naive per-bit formulation of an operation that
//! [`crate::binary`], [`crate::bundle`] or [`crate::encoding`] implements
//! with packed word arithmetic. They are deliberately simple enough to
//! audit by eye and serve as oracles: property tests assert bit-for-bit
//! equality between each kernel and its scalar reference across
//! dimensionalities, including non-multiple-of-64 tail-word cases.

use crate::binary::BinaryHypervector;
use crate::bitmatrix::BitMatrix;
use crate::distill::BitSelection;
use crate::encoding::LinearEncoder;
use crate::error::HdcError;

/// Per-bit cyclic rotation: bit `i` of the input moves to `(i + k) % d`.
#[must_use]
pub fn permute(hv: &BinaryHypervector, k: usize) -> BinaryHypervector {
    let d = hv.len();
    let k = k % d;
    let mut out = BinaryHypervector::zeros(hv.dim());
    for i in 0..d {
        if hv.get(i) {
            out.set((i + k) % d, true);
        }
    }
    out
}

/// Per-bit level encoding: clone the seed, then flip the first
/// `flips/2` entries of each flip list one bit at a time.
#[must_use]
pub fn linear_encode(enc: &LinearEncoder, t: f64) -> BinaryHypervector {
    let half = enc.flips_for(t) / 2;
    let (ones, zeros) = enc.flip_order();
    let mut hv = enc.seed_hypervector().clone();
    for &i in &ones[..half] {
        hv.flip(i as usize);
    }
    for &i in &zeros[..half] {
        hv.flip(i as usize);
    }
    hv
}

/// Per-bit weighted majority vote with the paper's tie → 1 rule: bit `i`
/// of the result is 1 iff `2·Σ weightⱼ·bitⱼᵢ ≥ Σ weightⱼ`.
pub fn weighted_majority(
    inputs: &[(BinaryHypervector, u32)],
) -> Result<BinaryHypervector, HdcError> {
    let (first, _) = inputs.first().ok_or(HdcError::EmptyInput)?;
    let dim = first.dim();
    let mut total = 0u64;
    for (hv, w) in inputs {
        if hv.dim() != dim {
            return Err(HdcError::DimensionMismatch {
                left: dim.get(),
                right: hv.dim().get(),
            });
        }
        total += u64::from(*w);
    }
    if total == 0 {
        return Err(HdcError::EmptyInput);
    }
    let mut out = BinaryHypervector::zeros(dim);
    for i in 0..dim.get() {
        let count: u64 = inputs
            .iter()
            .filter(|(hv, _)| hv.get(i))
            .map(|(_, w)| u64::from(*w))
            .sum();
        if 2 * count >= total {
            out.set(i, true);
        }
    }
    Ok(out)
}

/// Per-bit unweighted majority vote (every input carries one vote).
pub fn majority(inputs: &[BinaryHypervector]) -> Result<BinaryHypervector, HdcError> {
    let weighted: Vec<(BinaryHypervector, u32)> = inputs.iter().map(|hv| (hv.clone(), 1)).collect();
    weighted_majority(&weighted)
}

/// Per-bit dot product of two [`BitMatrix`] rows: counts positions where
/// both bits are set, one bit at a time.
#[must_use]
pub fn popcount_dot(m: &BitMatrix, a: usize, b: usize) -> usize {
    (0..m.dim().get())
        .filter(|&c| m.get(a, c) && m.get(b, c))
        .count()
}

/// Per-bit Hamming distance between two [`BitMatrix`] rows.
#[must_use]
pub fn row_hamming(m: &BitMatrix, a: usize, b: usize) -> usize {
    (0..m.dim().get())
        .filter(|&c| m.get(a, c) != m.get(b, c))
        .count()
}

/// Per-bit weighted sum of a [`BitMatrix`] row: `Σⱼ wⱼ·xⱼ` accumulated in
/// naive left-to-right order. The word-level kernel uses four accumulator
/// lanes, so parity tests against this oracle must allow a relative
/// floating-point tolerance.
#[must_use]
pub fn masked_weight_sum(m: &BitMatrix, row: usize, weights: &[f64]) -> f64 {
    (0..m.dim().get())
        .filter(|&c| m.get(row, c))
        .map(|c| weights[c])
        .sum()
}

/// Per-bit scatter-add oracle: `out[c] += delta` for every set bit of the
/// given [`BitMatrix`] row. Additions are exact duals of each other in the
/// kernel and the oracle (one add per set bit, same order), so parity
/// tests may use bit equality.
pub fn masked_scatter_add(m: &BitMatrix, row: usize, delta: f64, out: &mut [f64]) {
    for c in (0..m.dim().get()).filter(|&c| m.get(row, c)) {
        out[c] += delta;
    }
}

/// Per-bit column gather: output bit `p` is input bit `selection.indices()[p]`,
/// read and written one bit at a time.
#[must_use]
pub fn gather_hypervector(selection: &BitSelection, hv: &BinaryHypervector) -> BinaryHypervector {
    let mut out = BinaryHypervector::zeros(selection.dim());
    for (p, &i) in selection.indices().iter().enumerate() {
        out.set(p, hv.get(i as usize));
    }
    out
}

/// Per-bit column gather over a [`BitMatrix`]: every row is gathered
/// independently with [`gather_hypervector`] semantics.
#[must_use]
pub fn gather_matrix(selection: &BitSelection, m: &BitMatrix) -> BitMatrix {
    let mut out = BitMatrix::zeros(m.n_rows(), selection.dim());
    for r in 0..m.n_rows() {
        for (p, &i) in selection.indices().iter().enumerate() {
            out.set(r, p, m.get(r, i as usize));
        }
    }
    out
}

/// Per-bit symmetric pairwise Hamming matrix, row-major `n·n` entries.
#[must_use]
pub fn pairwise_hamming(m: &BitMatrix) -> Vec<u32> {
    let n = m.n_rows();
    let mut out = vec![0u32; n * n];
    for i in 0..n {
        for j in 0..n {
            out[i * n + j] = row_hamming(m, i, j) as u32;
        }
    }
    out
}
