//! Dimension-distillation Pareto sweep: how many of the paper's 10,000
//! bits does *serving* actually need?
//!
//! The sweep encodes a cohort at full width, ranks bit positions by class
//! discrimination ([`hyperfex_hdc::distill::discrimination_scores`]),
//! prunes to a ladder of target widths with both the ranked selection and
//! a random-selection control, and measures the two axes of the trade:
//! Hamming LOOCV accuracy and per-query predict latency of the batch
//! Hamming kernel. The [`gate`] helper turns one sweep into the CI
//! verdict: a ranked selection at or under the gate width must stay
//! within an accuracy budget of the full model while beating a latency
//! speedup floor.

use crate::error::HyperfexError;
use crate::extractor::HdcFeatureExtractor;
use hyperfex_data::Table;
use hyperfex_eval::report::{pct, TableReport};
use hyperfex_hdc::binary::Dim;
use hyperfex_hdc::bitmatrix::{hamming_between, BitMatrix};
use hyperfex_hdc::classify::{ClassAccumulators, LeaveOneOut};
use hyperfex_hdc::distill::{discrimination_scores, BitSelection};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// How a pruned selection's bit positions were chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Top-k bits by class-discrimination margin.
    Ranked,
    /// A seeded uniform random selection — the control arm.
    Random,
}

impl Strategy {
    /// Display label used by reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Ranked => "ranked",
            Self::Random => "random",
        }
    }
}

/// One (dimensionality, strategy) point of the accuracy/latency Pareto.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// Serving bits after pruning.
    pub dim: usize,
    /// How the retained bits were chosen.
    pub strategy: Strategy,
    /// Hamming LOOCV accuracy at this width.
    pub accuracy: f64,
    /// Accuracy drop vs the full-width model, in percentage points
    /// (positive = worse than full width).
    pub accuracy_drop_pts: f64,
    /// Best-of-N per-query latency of the batch Hamming predict kernel,
    /// in nanoseconds.
    pub predict_ns_per_query: f64,
    /// Full-width latency divided by this point's latency.
    pub speedup: f64,
}

/// The full sweep for one cohort.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParetoSweep {
    /// Cohort label ("Pima R", "Sylhet").
    pub dataset: String,
    /// Full-width bits the sweep prunes from.
    pub full_dim: usize,
    /// Hamming LOOCV accuracy at full width.
    pub full_accuracy: f64,
    /// Full-width per-query predict latency in nanoseconds.
    pub full_predict_ns_per_query: f64,
    /// One point per (dimensionality, strategy) pair, in sweep order.
    pub points: Vec<ParetoPoint>,
}

/// The CI verdict distilled from one cohort's sweep (see [`gate`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GateOutcome {
    /// Cohort label the verdict refers to.
    pub dataset: String,
    /// Largest ranked width at or under the gate width, the "prune to
    /// this many bits" CI contract.
    pub gate_dim: usize,
    /// Accuracy drop of the gate-width ranked selection, in points.
    pub accuracy_drop_pts: f64,
    /// Best speedup among ranked selections at or under the gate width
    /// that also meet the accuracy budget (0.0 when none do).
    pub speedup: f64,
    /// Whether the cohort passes the gate.
    pub pass: bool,
    /// Human-readable reason, pass or fail.
    pub detail: String,
}

/// Best-of-`repeats` per-query wall time of the batch Hamming kernel —
/// the distance computation that dominates k-NN serving.
fn predict_ns_per_query(
    queries: &BitMatrix,
    bank: &BitMatrix,
    repeats: usize,
) -> Result<f64, HyperfexError> {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let start = Instant::now();
        let distances = hamming_between(black_box(queries), black_box(bank))?;
        black_box(&distances);
        best = best.min(start.elapsed().as_secs_f64() * 1e9);
    }
    Ok(best / queries.n_rows().max(1) as f64)
}

/// Runs the Pareto sweep for one cohort: full-width baseline plus every
/// `dims × {ranked, random}` point. `timing_repeats` controls the
/// best-of-N latency measurement (higher = less noise, more wall time).
pub fn pareto_sweep(
    table: &Table,
    full_dim: Dim,
    dims: &[usize],
    seed: u64,
    label: &str,
    timing_repeats: usize,
) -> Result<ParetoSweep, HyperfexError> {
    let labels = table.labels();
    let mut extractor = HdcFeatureExtractor::new(full_dim, seed);
    let hvs = extractor.fit_transform(table)?;
    let full_accuracy = LeaveOneOut::new().run(&hvs, labels)?.accuracy();
    let bank = BitMatrix::from_hypervectors(&hvs)?;
    let full_ns = predict_ns_per_query(&bank, &bank, timing_repeats)?;

    let mut acc = ClassAccumulators::new(full_dim);
    for (hv, &class) in hvs.iter().zip(labels) {
        acc.grow(class);
        acc.add(class, hv, 1);
    }
    let scores = discrimination_scores(&acc)?;

    let mut points = Vec::with_capacity(dims.len() * 2);
    for &d in dims {
        for strategy in [Strategy::Ranked, Strategy::Random] {
            let selection = match strategy {
                Strategy::Ranked => BitSelection::top_k(full_dim, &scores, d)?,
                Strategy::Random => {
                    BitSelection::random(full_dim, d, seed ^ 0x9E37_79B9 ^ d as u64)?
                }
            };
            let pruned_bank = selection.gather_matrix(&bank)?;
            let pruned_hvs = hvs
                .iter()
                .map(|hv| selection.gather_hypervector(hv))
                .collect::<Result<Vec<_>, _>>()?;
            let accuracy = LeaveOneOut::new().run(&pruned_hvs, labels)?.accuracy();
            let ns = predict_ns_per_query(&pruned_bank, &pruned_bank, timing_repeats)?;
            points.push(ParetoPoint {
                dim: d,
                strategy,
                accuracy,
                accuracy_drop_pts: (full_accuracy - accuracy) * 100.0,
                predict_ns_per_query: ns,
                speedup: full_ns / ns.max(f64::MIN_POSITIVE),
            });
        }
    }

    Ok(ParetoSweep {
        dataset: label.to_string(),
        full_dim: full_dim.get(),
        full_accuracy,
        full_predict_ns_per_query: full_ns,
        points,
    })
}

/// Renders one cohort's sweep as a report table.
#[must_use]
pub fn pareto_report(sweep: &ParetoSweep) -> TableReport {
    let mut t = TableReport::new(
        format!(
            "Distillation Pareto — {} (full width {} bits, LOOCV {}, {:.0} ns/query)",
            sweep.dataset,
            sweep.full_dim,
            pct(sweep.full_accuracy),
            sweep.full_predict_ns_per_query
        ),
        &[
            "Bits",
            "Selection",
            "Accuracy",
            "Δ pts",
            "ns/query",
            "Speedup",
        ],
    );
    for p in &sweep.points {
        t.push_row(vec![
            p.dim.to_string(),
            p.strategy.label().to_string(),
            pct(p.accuracy),
            format!("{:+.1}", p.accuracy_drop_pts),
            format!("{:.0}", p.predict_ns_per_query),
            format!("{:.1}x", p.speedup),
        ]);
    }
    t
}

/// Applies the CI gate to one cohort's sweep.
///
/// Two conditions, both required:
///
/// 1. **Accuracy contract** — the largest ranked selection at or under
///    `max_bits` (the "prune to 2k" width) must lose at most
///    `max_drop_pts` percentage points of LOOCV accuracy vs full width.
/// 2. **Latency contract** — some ranked selection at or under `max_bits`
///    that meets the accuracy budget must also reach `min_speedup`×
///    lower measured predict latency.
#[must_use]
pub fn gate(
    sweep: &ParetoSweep,
    max_bits: usize,
    max_drop_pts: f64,
    min_speedup: f64,
) -> GateOutcome {
    let ranked: Vec<&ParetoPoint> = sweep
        .points
        .iter()
        .filter(|p| p.strategy == Strategy::Ranked && p.dim <= max_bits)
        .collect();
    let Some(gate_point) = ranked.iter().max_by_key(|p| p.dim) else {
        return GateOutcome {
            dataset: sweep.dataset.clone(),
            gate_dim: 0,
            accuracy_drop_pts: f64::NAN,
            speedup: 0.0,
            pass: false,
            detail: format!("no ranked sweep point at or under {max_bits} bits"),
        };
    };
    let accuracy_ok = gate_point.accuracy_drop_pts <= max_drop_pts;
    let best_speedup = ranked
        .iter()
        .filter(|p| p.accuracy_drop_pts <= max_drop_pts)
        .map(|p| p.speedup)
        .fold(0.0f64, f64::max);
    let speedup_ok = best_speedup >= min_speedup;
    let detail = format!(
        "{} bits ranked: {:+.2} pts vs full (budget {:+.1}); best qualifying speedup {:.1}x \
         (floor {:.1}x)",
        gate_point.dim, gate_point.accuracy_drop_pts, max_drop_pts, best_speedup, min_speedup
    );
    GateOutcome {
        dataset: sweep.dataset.clone(),
        gate_dim: gate_point.dim,
        accuracy_drop_pts: gate_point.accuracy_drop_pts,
        speedup: best_speedup,
        pass: accuracy_ok && speedup_ok,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperfex_data::sylhet::{self, SylhetConfig};

    fn small_table() -> Table {
        sylhet::generate(&SylhetConfig {
            n_positive: 30,
            n_negative: 24,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn sweep_covers_every_dim_strategy_pair_and_stays_sane() {
        let table = small_table();
        let sweep = pareto_sweep(&table, Dim::new(512), &[64, 256, 512], 7, "Sylhet", 2).unwrap();
        assert_eq!(sweep.dataset, "Sylhet");
        assert_eq!(sweep.full_dim, 512);
        assert_eq!(sweep.points.len(), 6);
        assert!(sweep.full_predict_ns_per_query > 0.0);
        for p in &sweep.points {
            assert!((0.0..=1.0).contains(&p.accuracy), "{p:?}");
            assert!(p.predict_ns_per_query > 0.0, "{p:?}");
            assert!(p.speedup > 0.0, "{p:?}");
            assert!(
                (p.accuracy_drop_pts - (sweep.full_accuracy - p.accuracy) * 100.0).abs() < 1e-9
            );
        }
        // Full-width points prune nothing, so their LOOCV accuracy is the
        // baseline's exactly (both selections retain all 512 bits).
        for p in sweep.points.iter().filter(|p| p.dim == 512) {
            assert!((p.accuracy - sweep.full_accuracy).abs() < 1e-12, "{p:?}");
        }
    }

    #[test]
    fn sweep_is_deterministic_in_everything_but_wall_time() {
        let table = small_table();
        let a = pareto_sweep(&table, Dim::new(256), &[64], 3, "Sylhet", 1).unwrap();
        let b = pareto_sweep(&table, Dim::new(256), &[64], 3, "Sylhet", 1).unwrap();
        assert_eq!(a.full_accuracy, b.full_accuracy);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.accuracy, pb.accuracy);
            assert_eq!(pa.strategy, pb.strategy);
        }
    }

    fn synthetic_sweep(points: Vec<ParetoPoint>) -> ParetoSweep {
        ParetoSweep {
            dataset: "Test".to_string(),
            full_dim: 10_000,
            full_accuracy: 0.90,
            full_predict_ns_per_query: 1_000.0,
            points,
        }
    }

    fn point(dim: usize, strategy: Strategy, drop: f64, speedup: f64) -> ParetoPoint {
        ParetoPoint {
            dim,
            strategy,
            accuracy: 0.90 - drop / 100.0,
            accuracy_drop_pts: drop,
            predict_ns_per_query: 1_000.0 / speedup,
            speedup,
        }
    }

    #[test]
    fn gate_passes_when_both_contracts_hold() {
        let sweep = synthetic_sweep(vec![
            point(1_000, Strategy::Ranked, 0.4, 9.0),
            point(2_000, Strategy::Ranked, 0.2, 4.8),
            point(2_000, Strategy::Random, 5.0, 4.8),
            point(4_000, Strategy::Ranked, 0.1, 2.4),
        ]);
        let outcome = gate(&sweep, 2_000, 1.0, 5.0);
        assert!(outcome.pass, "{}", outcome.detail);
        assert_eq!(outcome.gate_dim, 2_000);
        assert!((outcome.accuracy_drop_pts - 0.2).abs() < 1e-12);
        // The qualifying 1k point supplies the speedup.
        assert!((outcome.speedup - 9.0).abs() < 1e-12);
    }

    #[test]
    fn gate_fails_on_accuracy_regression_at_the_gate_width() {
        let sweep = synthetic_sweep(vec![
            point(1_000, Strategy::Ranked, 0.1, 9.0),
            point(2_000, Strategy::Ranked, 1.7, 4.8),
        ]);
        let outcome = gate(&sweep, 2_000, 1.0, 5.0);
        assert!(!outcome.pass);
        assert!(outcome.detail.contains("+1.70 pts"));
    }

    #[test]
    fn gate_fails_when_no_qualifying_point_is_fast_enough() {
        let sweep = synthetic_sweep(vec![
            point(1_000, Strategy::Ranked, 2.0, 9.0), // fast but inaccurate
            point(2_000, Strategy::Ranked, 0.2, 4.8), // accurate but slow
        ]);
        let outcome = gate(&sweep, 2_000, 1.0, 5.0);
        assert!(!outcome.pass);
        assert!((outcome.speedup - 4.8).abs() < 1e-12);
    }

    #[test]
    fn gate_handles_an_empty_sweep() {
        let outcome = gate(&synthetic_sweep(vec![]), 2_000, 1.0, 5.0);
        assert!(!outcome.pass);
        assert_eq!(outcome.gate_dim, 0);
    }

    #[test]
    fn random_control_is_no_better_than_ranked_at_a_squeezed_width() {
        // At an aggressive prune the ranked selection must not lose to the
        // random control by a wide margin — the ranking is the product
        // under test. (Equality is fine: on easy cohorts both saturate.)
        let table = small_table();
        let sweep = pareto_sweep(&table, Dim::new(1_024), &[96], 11, "Sylhet", 1).unwrap();
        let ranked = sweep
            .points
            .iter()
            .find(|p| p.strategy == Strategy::Ranked)
            .unwrap();
        let random = sweep
            .points
            .iter()
            .find(|p| p.strategy == Strategy::Random)
            .unwrap();
        assert!(
            ranked.accuracy >= random.accuracy - 0.05,
            "ranked {} vs random {}",
            ranked.accuracy,
            random.accuracy
        );
    }
}
