//! # hyperfex-obs
//!
//! Zero-dependency observability substrate for the `hyperfex` workspace:
//!
//! * [`span`] — hierarchical RAII span timers. Each thread keeps its own
//!   span stack; nested spans aggregate under `/`-joined paths such as
//!   `core/fit_transform/hdc/encode_batch`.
//! * [`counter_add`] — named monotonic counters (one atomic add on the hot
//!   path once registered).
//! * [`observe`] — fixed-bucket histograms with quantile estimation.
//! * [`Recorder`] / [`snapshot`] — serialize everything recorded during a
//!   run to JSON via the vendored serde, for machine-readable perf reports
//!   (`BENCH_*.json`) consumed by `cargo xtask bench`.
//!
//! Production crates (`hyperfex-hdc`, `hyperfex-ml`, `hyperfex-data`,
//! `hyperfex-core`) depend on this crate *optionally*, behind their own
//! `obs` feature, and wrap the calls in thin shims that compile to no-ops
//! when the feature is off — uninstrumented builds carry no obs symbols
//! and pay zero overhead.
//!
//! ## Determinism
//!
//! Metric maps are `BTreeMap`s keyed by name, so iteration (and therefore
//! report serialization) order is deterministic. [`Snapshot::deterministic`]
//! additionally strips measured timings, leaving a view that is
//! byte-identical across two identical seeded runs — the property the
//! determinism regression test asserts.

#![warn(missing_docs)]

mod metrics;
mod registry;
mod report;
mod span;

pub use metrics::Histogram;
pub use report::{
    snapshot, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Recorder, RunReport, Snapshot,
    SpanSnapshot,
};
pub use span::{current_depth, span, SpanGuard};

use std::sync::atomic::Ordering;

/// Adds `delta` to the named counter, registering it on first use.
pub fn counter_add(name: &'static str, delta: u64) {
    // lint: relaxed-ok (monotone counter; readers need totals, not ordering)
    registry::global()
        .counter(name)
        .fetch_add(delta, Ordering::Relaxed);
}

/// Raises the named high-water-mark gauge to `value` if it exceeds the
/// current mark, registering the gauge on first use.
///
/// Gauges are monotone-per-reset watermarks (peak resident bytes, largest
/// batch seen, …): concurrent reporters race benignly — `fetch_max` keeps
/// the largest value regardless of ordering — and [`reset`] drops the mark
/// back to zero.
pub fn gauge_max(name: &'static str, value: u64) {
    // lint: relaxed-ok (monotone watermark; fetch_max commutes, readers
    // need the peak, not ordering)
    registry::global()
        .gauge(name)
        .fetch_max(value, Ordering::Relaxed);
}

/// Reads the named gauge's current high-water mark (0 when unregistered).
#[must_use]
pub fn gauge_value(name: &'static str) -> u64 {
    // lint: relaxed-ok (single-cell read of a monotone watermark)
    registry::global().gauge(name).load(Ordering::Relaxed)
}

/// Records `value` into the named histogram, registering it with `bounds`
/// on first use.
///
/// `bounds` must be strictly ascending finite upper bounds; an implicit
/// overflow bucket catches values above the last bound. The bounds of the
/// *first* registration win — later calls with different bounds record
/// into the existing layout.
pub fn observe(name: &'static str, bounds: &'static [f64], value: f64) {
    registry::global().histogram(name, bounds).observe(value);
}

/// Clears all counters, histograms, spans and the peak-depth watermark.
///
/// Open span guards keep working after a reset: their paths re-register
/// when they close.
pub fn reset() {
    registry::global().reset();
}

/// Serializes the registry's test access: the registry is process-global,
/// so concurrent `cargo test` threads would otherwise race on `reset()`.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_accumulates() {
        let _guard = test_lock();
        reset();
        counter_add("lib_test/events", 2);
        counter_add("lib_test/events", 5);
        let snap = snapshot();
        let c = snap
            .counters
            .iter()
            .find(|c| c.name == "lib_test/events")
            .expect("counter registered");
        assert_eq!(c.value, 7);
    }

    #[test]
    fn observe_registers_and_records() {
        let _guard = test_lock();
        reset();
        const BOUNDS: &[f64] = &[0.5, 1.0];
        observe("lib_test/ratio", BOUNDS, 0.25);
        observe("lib_test/ratio", BOUNDS, 0.75);
        observe("lib_test/ratio", BOUNDS, 2.0);
        let snap = snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "lib_test/ratio")
            .expect("histogram registered");
        assert_eq!(h.buckets, vec![1, 1, 1]);
        assert_eq!(h.count, 3);
    }

    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        let _guard = test_lock();
        reset();
        gauge_max("lib_test/peak", 40);
        gauge_max("lib_test/peak", 100);
        gauge_max("lib_test/peak", 70);
        assert_eq!(gauge_value("lib_test/peak"), 100);
        let snap = snapshot();
        let g = snap
            .gauges
            .iter()
            .find(|g| g.name == "lib_test/peak")
            .expect("gauge registered");
        assert_eq!(g.value, 100);
        assert_eq!(gauge_value("lib_test/unregistered"), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let _guard = test_lock();
        reset();
        counter_add("lib_test/gone", 1);
        gauge_max("lib_test/gone_peak", 9);
        {
            let _s = span("lib_test/gone_span");
        }
        reset();
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.spans.is_empty());
        assert_eq!(snap.peak_span_depth, 0);
    }
}
