//! Rule 1: panic audit, plus the slice-index-in-kernel check.
//!
//! Library (non-`#[cfg(test)]`) code of the production crates must not
//! contain `unwrap()`, `expect(`, `panic!`, `todo!`, `unimplemented!` or
//! `unreachable!`. Existing, justified offenders live in the shrink-only
//! allowlist (`crates/xtask/allow.toml`); new ones fail the build.
//!
//! In the word-level kernel files, bracket indexing is additionally
//! forbidden unless the enclosing function carries an explicit
//! `// lint: index-ok (<reason>)` annotation: every indexing expression in
//! a kernel is a potential panic *and* a bounds check the optimiser must
//! prove away, so each one carries a written justification.

use crate::diag::{Rule, Violation};
use crate::lex::TokenKind;
use crate::source::Analysis;

/// Crates whose `src/` trees are panic-audited.
pub const AUDITED_CRATES: [&str; 8] = [
    "hdc", "ml", "data", "eval", "core", "faults", "obs", "serve",
];

/// Kernel files where slice indexing requires an annotation.
pub const KERNEL_FILES: [&str; 10] = [
    "crates/hdc/src/binary.rs",
    "crates/hdc/src/bitmatrix.rs",
    "crates/hdc/src/bundle.rs",
    "crates/hdc/src/distill.rs",
    "crates/hdc/src/encoding/linear.rs",
    "crates/hdc/src/encoding/pruned.rs",
    "crates/hdc/src/classify/trainer/accumulator.rs",
    "crates/hdc/src/classify/centroid.rs",
    "crates/serve/src/snapshot.rs",
    "crates/hdc/src/stream.rs",
];

const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "todo!",
    "unimplemented!",
    "unreachable!",
];

/// Audits one analysed file. `rel_path` is workspace-relative with forward
/// slashes.
pub fn check_file(rel_path: &str, analysis: &Analysis) -> Vec<Violation> {
    let mut out = Vec::new();
    let is_kernel = KERNEL_FILES.contains(&rel_path);
    for (idx, stripped) in analysis.stripped.iter().enumerate() {
        if analysis.in_test[idx] {
            continue;
        }
        let line = idx + 1;
        for pat in PANIC_PATTERNS {
            if let Some(col) = stripped.find(pat) {
                // `debug_assert…` and `assert…` are allowed; make sure the
                // match is not inside an identifier (e.g. `expect_fn(`).
                if col > 0 && pat.starts_with(|c: char| c.is_alphabetic()) {
                    let prev = stripped.as_bytes()[col - 1] as char;
                    if prev.is_alphanumeric() || prev == '_' {
                        continue;
                    }
                }
                out.push(Violation {
                    file: rel_path.to_string(),
                    line,
                    rule: Rule::Panic,
                    message: format!(
                        "`{pat}` in library code — return a typed error or add it to \
                         crates/xtask/allow.toml with a reason (shrink-only)"
                    ),
                    line_text: analysis.raw[idx].clone(),
                });
            }
        }
        if is_kernel {
            for col in index_sites(stripped) {
                let annotated = analysis
                    .enclosing_fn(line)
                    .is_some_and(|f| analysis.fn_has_annotation(f, "lint: index-ok ("));
                if !annotated {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line,
                        rule: Rule::KernelIndex,
                        message: format!(
                            "slice indexing at column {col} in a word-level kernel — \
                             use iterators, or annotate the function with \
                             `// lint: index-ok (<why the index is in bounds>)`"
                        ),
                        line_text: analysis.raw[idx].clone(),
                    });
                    break; // one finding per line is enough
                }
            }
        }
    }
    out
}

/// Rule: `let _ = call(…);` silently discarding a value in library code.
///
/// A discarded call result is how `Result`s vanish: the error path compiles
/// away without a trace. Library code must propagate (`?`), handle, or
/// justify with `// lint: discard-ok (<reason>)`. Plain binding discards
/// without a call (`let _ = guard;`) are not flagged — they have no error
/// path to lose.
pub fn check_discards(rel_path: &str, analysis: &Analysis) -> Vec<Violation> {
    let ctx = analysis.ctx();
    let mut out = Vec::new();
    let mut si = 0;
    while si + 2 < ctx.sig.len() {
        let is_discard = ctx.kind(si) == TokenKind::Ident
            && ctx.text(si) == "let"
            && ctx.kind(si + 1) == TokenKind::Ident
            && ctx.text(si + 1) == "_"
            && ctx.is_punct(si + 2, '=');
        if !is_discard {
            si += 1;
            continue;
        }
        // Scan the discarded expression (to `;` at depth 0) for a call.
        let mut depth = 0i64;
        let mut has_call = false;
        let mut propagates = false;
        let mut sj = si + 3;
        while sj < ctx.sig.len() {
            if ctx.kind(sj) == TokenKind::Punct {
                match ctx.text(sj).as_bytes().first() {
                    Some(b';') if depth == 0 => break,
                    Some(b'(') => {
                        depth += 1;
                        // A call: `(` directly after an ident or `.method`.
                        if sj >= 1 && ctx.kind(sj - 1) == TokenKind::Ident {
                            has_call = true;
                        }
                    }
                    Some(b'[' | b'{') => depth += 1,
                    Some(b')' | b']' | b'}') => depth -= 1,
                    // `let _ = expr?;` propagates the error — only the Ok
                    // payload is dropped, which is deliberate (warmups etc).
                    Some(b'?') if depth == 0 => propagates = true,
                    _ => {}
                }
            }
            sj += 1;
        }
        let line = ctx.line(si);
        si = sj + 1;
        if !has_call
            || propagates
            || analysis.in_test.get(line - 1).copied().unwrap_or(false)
            || analysis.line_has_annotation(line, "lint: discard-ok (")
        {
            continue;
        }
        out.push(Violation {
            file: rel_path.to_string(),
            line,
            rule: Rule::Discard,
            message: "`let _ = …(…)` discards a call result in library code — propagate \
                      with `?`, handle the error, or annotate with \
                      `// lint: discard-ok (<reason>)`"
                .to_string(),
            line_text: analysis.raw.get(line - 1).cloned().unwrap_or_default(),
        });
    }
    out
}

/// Columns of bracket-indexing expressions: `ident[`, `)[`, `][`. Macro
/// invocations (`vec![`), attributes (`#[`) and slice *types* (`&[u64]`,
/// `[u64; 4]`) never match because their `[` is not preceded by an
/// identifier character or closing bracket.
fn index_sites(stripped: &str) -> Vec<usize> {
    let bytes = stripped.as_bytes();
    let mut sites = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if prev.is_alphanumeric() || prev == '_' || prev == ')' || prev == ']' {
            sites.push(i);
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(path: &str, src: &str) -> Vec<Violation> {
        check_file(path, &Analysis::new(src))
    }

    #[test]
    fn library_unwrap_is_flagged_with_file_and_line() {
        let v = audit(
            "crates/ml/src/lib.rs",
            "fn f() {\n    let x = y.unwrap();\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[0].rule, Rule::Panic);
    }

    #[test]
    fn test_code_and_comments_and_strings_are_exempt() {
        let src = "fn f() -> &'static str {\n\
                       // a comment mentioning .unwrap()\n\
                       \"a string with panic!\"\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); panic!(\"boom\"); }\n\
                   }\n";
        assert!(audit("crates/data/src/lib.rs", src).is_empty());
    }

    #[test]
    fn all_panic_macros_are_caught() {
        let src = "fn f() {\n    todo!()\n}\nfn g() {\n    unimplemented!()\n}\nfn h() {\n    unreachable!()\n}\n";
        let v = audit("crates/eval/src/lib.rs", src);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn expect_fn_identifiers_are_not_confused_with_expect() {
        let v = audit("crates/core/src/lib.rs", "fn f() { what_to_expect(1); }\n");
        assert!(v.is_empty());
    }

    #[test]
    fn kernel_indexing_requires_annotation() {
        let bad = "fn kernel(w: &mut [u64], i: usize) {\n    w[i] |= 1;\n}\n";
        let v = audit("crates/hdc/src/binary.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::KernelIndex);

        let good = "// lint: index-ok (i is asserted in bounds by the caller)\n\
                    fn kernel(w: &mut [u64], i: usize) {\n    w[i] |= 1;\n}\n";
        assert!(audit("crates/hdc/src/binary.rs", good).is_empty());

        // Non-kernel files may index freely.
        assert!(audit("crates/ml/src/tree.rs", bad).is_empty());
    }

    #[test]
    fn discarded_call_results_require_a_reason() {
        let bad = "fn f(path: &str) {\n    let _ = std::fs::remove_file(path);\n}\n";
        let v = check_discards("crates/data/src/lib.rs", &Analysis::new(bad));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Discard);
        assert_eq!(v[0].line, 2);

        let good = "fn f(path: &str) {\n\
                        // lint: discard-ok (best-effort cleanup; absence is fine)\n\
                        let _ = std::fs::remove_file(path);\n\
                    }\n";
        assert!(check_discards("crates/data/src/lib.rs", &Analysis::new(good)).is_empty());

        // No call → no error path to lose; tests are exempt.
        let plain = "fn f(g: Guard) {\n    let _ = g;\n}\n\
                     #[cfg(test)]\nmod tests {\n    fn t() { let _ = go(); }\n}\n";
        assert!(check_discards("crates/data/src/lib.rs", &Analysis::new(plain)).is_empty());

        // `?` propagates the error; only the Ok payload is dropped.
        let warmup = "fn f(m: &M, x: &X) -> Result<(), E> {\n\
                          let _ = m.predict(x)?;\n\
                          Ok(())\n\
                      }\n";
        assert!(check_discards("crates/core/src/lib.rs", &Analysis::new(warmup)).is_empty());
    }

    #[test]
    fn macros_attributes_and_slice_types_are_not_indexing() {
        let src =
            "fn f(x: &[u64]) -> Vec<u64> {\n    let v: [u64; 2] = [0, 1];\n    vec![0u64; 4]\n}\n";
        assert!(audit("crates/hdc/src/binary.rs", src).is_empty());
    }
}
