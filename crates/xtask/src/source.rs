//! Per-file analysis state, built on the token stream.
//!
//! [`Analysis`] is the shared substrate every rule consumes. Since the
//! token-stream rewrite it is derived entirely from [`crate::lex`] +
//! [`crate::structure`]: `stripped` blanks the bytes of string/char/comment
//! tokens (so no rule pattern can match inside data — the false-positive
//! class the old character-scanner's heuristics could miss), `in_test`
//! comes from structurally parsed `#[cfg(test)]` items, and `functions`
//! from token-level brace matching.

use crate::lex::{self, Token};
use crate::structure::{self, Ctx};

pub use crate::structure::FnSpan;

/// A Rust source file after lexical + structural analysis.
pub struct Analysis {
    /// The source text, owned so token spans stay resolvable.
    pub source: String,
    /// The full token stream (a byte-exact partition of `source`).
    pub tokens: Vec<Token>,
    /// Raw source lines (1-based indexing via `line - 1`).
    pub raw: Vec<String>,
    /// Lines with string/char-literal and comment bytes blanked out.
    pub stripped: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
    /// Function extents, in source order (nested fns included).
    pub functions: Vec<FnSpan>,
}

impl Analysis {
    /// Lexes and structurally analyses a source file.
    pub fn new(source: &str) -> Self {
        let tokens = lex::lex(source);
        let stripped_text = lex::stripped_text(source, &tokens);
        let raw: Vec<String> = source.lines().map(str::to_string).collect();
        let stripped: Vec<String> = stripped_text.lines().map(str::to_string).collect();
        let ctx = Ctx::new(source, &tokens);
        let items = structure::parse_items(&ctx);
        let in_test = structure::test_mask(&ctx, &items, raw.len());
        let functions = structure::find_fn_spans(&ctx);
        Self {
            source: source.to_string(),
            tokens,
            raw,
            stripped,
            in_test,
            functions,
        }
    }

    /// A token-stream context borrowing this analysis.
    pub fn ctx(&self) -> Ctx<'_> {
        Ctx::new(&self.source, &self.tokens)
    }

    /// The parsed items of the file (computed on demand).
    pub fn items(&self) -> Vec<structure::Item> {
        structure::parse_items(&self.ctx())
    }

    /// The function span containing `line` (1-based), if any. Inner
    /// functions shadow outer ones (the innermost span wins).
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.functions
            .iter()
            .filter(|f| f.header_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.header_line)
    }

    /// True if any raw line of the function span, or of the contiguous
    /// comment/attribute block directly above it, contains `needle`.
    pub fn fn_has_annotation(&self, span: &FnSpan, needle: &str) -> bool {
        let body = (span.header_line - 1)..span.end_line.min(self.raw.len());
        if self.raw[body].iter().any(|l| l.contains(needle)) {
            return true;
        }
        // Walk the doc/attr/comment block above the header.
        let mut i = span.header_line - 1;
        while i > 0 {
            let t = self.raw[i - 1].trim_start();
            if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!") {
                if t.contains(needle) {
                    return true;
                }
                i -= 1;
            } else {
                break;
            }
        }
        false
    }

    /// True if `line` (1-based) carries `needle` directly, on the line
    /// above, or anywhere in the enclosing function's annotation scope.
    pub fn line_has_annotation(&self, line: usize, needle: &str) -> bool {
        let direct = self
            .raw
            .get(line.saturating_sub(1))
            .is_some_and(|l| l.contains(needle))
            || line >= 2 && self.raw.get(line - 2).is_some_and(|l| l.contains(needle));
        direct
            || self
                .enclosing_fn(line)
                .is_some_and(|f| self.fn_has_annotation(f, needle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let a = Analysis::new(
            "let x = \"has .unwrap() inside\"; // and .expect( here\nlet y = 1; /* panic! */\n",
        );
        assert!(!a.stripped[0].contains(".unwrap()"));
        assert!(!a.stripped[0].contains(".expect("));
        assert!(!a.stripped[1].contains("panic!"));
        assert!(a.stripped[1].contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_and_char_literals_are_blanked() {
        let a = Analysis::new(
            "let s = r#\"x.unwrap()\"#;\nlet c = '{'; let d = '\\n';\nfn f<'a>(x: &'a u32) {}\n",
        );
        assert!(!a.stripped[0].contains("unwrap"));
        assert!(!a.stripped[1].contains('{'), "{}", a.stripped[1]);
        // Lifetimes survive stripping.
        assert!(a.stripped[2].contains("'a"));
    }

    #[test]
    fn cfg_test_items_are_masked_to_their_closing_brace() {
        let src = "fn lib() { a.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { b.unwrap(); }\n\
                   }\n\
                   fn lib2() {}\n";
        let a = Analysis::new(src);
        assert!(!a.in_test[0]);
        assert!(a.in_test[1] && a.in_test[2] && a.in_test[3] && a.in_test[4]);
        assert!(!a.in_test[5]);
    }

    #[test]
    fn function_extents_cover_bodies_and_skip_trait_signatures() {
        let src = "trait T {\n\
                       fn sig(&self) -> u32;\n\
                   }\n\
                   fn top(x: u32) -> u32 {\n\
                       let y = x + 1;\n\
                       y\n\
                   }\n";
        let a = Analysis::new(src);
        let names: Vec<&str> = a.functions.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["top"]);
        assert_eq!(a.functions[0].header_line, 4);
        assert_eq!(a.functions[0].end_line, 7);
        assert!(a.enclosing_fn(5).is_some());
        assert!(a.enclosing_fn(2).is_none());
    }

    #[test]
    fn annotations_above_the_header_are_found() {
        let src = "/// Docs.\n\
                   // lint: tail-ok (caller re-masks)\n\
                   fn kernel(dst: &mut [u64]) {\n\
                       dst[0] |= 1;\n\
                   }\n";
        let a = Analysis::new(src);
        let f = &a.functions[0];
        assert!(a.fn_has_annotation(f, "lint: tail-ok ("));
        assert!(!a.fn_has_annotation(f, "lint: index-ok ("));
    }

    #[test]
    fn multiline_signatures_resolve_to_the_body_brace() {
        let src = "fn long(\n\
                       a: u32,\n\
                       b: u32,\n\
                   ) -> u32 {\n\
                       a + b\n\
                   }\n";
        let a = Analysis::new(src);
        assert_eq!(a.functions[0].body_start_line, 4);
        assert_eq!(a.functions[0].end_line, 6);
    }

    #[test]
    fn code_patterns_inside_literals_never_reach_stripped_text() {
        // The acceptance-criterion case: rule patterns placed inside string
        // literals and comments must be invisible to every rule.
        let src = "fn f() -> String {\n\
                       // w[i] as u32 .unwrap() scope(\n\
                       /* Ordering::Relaxed */\n\
                       format!(\"{} as u32 scope( .unwrap()\", 1)\n\
                   }\n";
        let a = Analysis::new(src);
        for line in &a.stripped {
            assert!(!line.contains("unwrap"));
            assert!(!line.contains("as u32"));
            assert!(!line.contains("scope("));
            assert!(!line.contains("Relaxed"));
        }
    }
}
