//! Instrumented end-to-end performance run for `cargo xtask bench`.
//!
//! Requires the `obs` feature (`cargo run -p hyperfex-experiments
//! --features obs --bin perf_report`). Runs the paper's pipeline — cohort
//! encoding, Hamming 1-NN LOOCV, one hybrid model fit — under
//! [`hyperfex::obs`] instrumentation and emits a single JSON document:
//! headline end-to-end numbers (cohort encode wall time, LOOCV throughput,
//! peak span depth) plus the full span/counter/histogram snapshot.
//!
//! Flags: `--quick` (small dimensionality), `--seed N`, `--out PATH`
//! (default: stdout).

use hyperfex::experiments::{hv_features, Datasets, ExperimentConfig};
use hyperfex::models::{make_model, ModelKind};
use hyperfex::obs::{self, Recorder, RunReport};
use hyperfex::prelude::*;
use hyperfex_hdc::bitmatrix::{hamming_between, BitMatrix};
use hyperfex_hdc::classify::LeaveOneOut;
use serde::Serialize;
use std::hint::black_box;
use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

/// Bucket bounds for the per-query/per-record latency histograms (ns);
/// `cargo xtask bench` lifts their p50/p95 into the `BENCH_4.json` e2e
/// block.
const LATENCY_BOUNDS_NS: &[f64] = &[1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8];
/// Rows sampled for the latency histograms.
const LATENCY_SAMPLES: usize = 64;

/// Headline end-to-end numbers `cargo xtask bench` folds into
/// `BENCH_4.json`.
#[derive(Debug, Serialize)]
struct E2eMetrics {
    /// Rows in the encoded cohort.
    cohort_rows: usize,
    /// Hypervector dimensionality used.
    dim: usize,
    /// Wall seconds to encode the whole cohort.
    cohort_encode_secs: f64,
    /// Wall seconds for the full LOOCV pass.
    loocv_secs: f64,
    /// LOOCV classification throughput.
    loocv_rows_per_sec: f64,
    /// Wall seconds to fit one hybrid model on the hypervectors.
    hybrid_fit_secs: f64,
    /// Deepest span nesting observed anywhere in the run.
    peak_span_depth: usize,
}

#[derive(Debug, Serialize)]
struct PerfReport {
    mode: String,
    e2e: E2eMetrics,
    report: RunReport,
}

fn main() {
    let mut quick = false;
    let mut seed = 7u64;
    let mut out: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a number");
                        exit(2);
                    });
                i += 1;
            }
            "--out" => {
                out = Some(PathBuf::from(args.get(i + 1).cloned().unwrap_or_else(
                    || {
                        eprintln!("--out needs a path");
                        exit(2);
                    },
                )));
                i += 1;
            }
            "--help" | "-h" => {
                println!("usage: perf_report [--quick] [--seed N] [--out PATH]");
                exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                exit(2);
            }
        }
        i += 1;
    }

    let config = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let report = match run(&config, seed, quick) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("perf_report failed: {e}");
            exit(1);
        }
    };
    let json = serde_json::to_string_pretty(&report).unwrap_or_else(|e| {
        eprintln!("perf_report: serialisation failed: {e}");
        exit(1);
    });
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("failed to write {}: {e}", path.display());
                exit(1);
            }
            println!("(perf report written to {})", path.display());
        }
        None => println!("{json}"),
    }
}

fn run(config: &ExperimentConfig, seed: u64, quick: bool) -> Result<PerfReport, HyperfexError> {
    let datasets = Datasets::generate(seed)?;
    let table = &datasets.pima_r;
    let dim = config.dim();

    let recorder = Recorder::start(if quick {
        "perf_report/quick"
    } else {
        "perf_report/full"
    });

    let encode = obs::timer("perf/encode_cohort");
    let mut extractor = HdcFeatureExtractor::new(dim, seed);
    let hvs = extractor.fit_transform(table)?;
    let cohort_encode_secs = encode.finish().as_secs_f64();

    let loocv = obs::timer("perf/loocv");
    let outcome = LeaveOneOut::new().run(&hvs, table.labels())?;
    let loocv_secs = loocv.finish().as_secs_f64();

    // Per-record encode and per-query predict latency distributions, the
    // latter at full width and distilled to one-fifth width (2k bits at
    // paper scale) — the serving trade `reports/pareto.json` quantifies.
    let sample_rows: Vec<usize> = (0..table.n_rows().min(LATENCY_SAMPLES)).collect();
    for &row in &sample_rows {
        let start = Instant::now();
        black_box(extractor.transform(table, Some(&sample_rows[row..=row]))?);
        obs::observe(
            "perf/encode_record_ns",
            LATENCY_BOUNDS_NS,
            start.elapsed().as_secs_f64() * 1e9,
        );
    }
    let bank = BitMatrix::from_hypervectors(&hvs)?;
    let distilled = extractor.distill(table, None, (dim.get() / 5).max(1))?;
    let pruned_bank = distilled.selection().gather_matrix(&bank)?;
    for hv in hvs.iter().take(LATENCY_SAMPLES) {
        let query = BitMatrix::from_hypervectors(std::slice::from_ref(hv))?;
        let start = Instant::now();
        black_box(hamming_between(&query, &bank)?);
        obs::observe(
            "perf/predict_query_ns",
            LATENCY_BOUNDS_NS,
            start.elapsed().as_secs_f64() * 1e9,
        );
        let pruned_query = distilled.selection().gather_matrix(&query)?;
        let start = Instant::now();
        black_box(hamming_between(&pruned_query, &pruned_bank)?);
        obs::observe(
            "perf/pruned_predict_query_ns",
            LATENCY_BOUNDS_NS,
            start.elapsed().as_secs_f64() * 1e9,
        );
    }

    let fit = obs::timer("perf/hybrid_fit");
    let hv_matrix = hv_features(table, dim, seed)?;
    let mut model = make_model(ModelKind::LogisticRegression, seed, &config.budget);
    model.fit(&hv_matrix, table.labels())?;
    let hybrid_fit_secs = fit.finish().as_secs_f64();

    let report = recorder.finish();
    Ok(PerfReport {
        mode: if quick { "quick" } else { "full" }.to_string(),
        e2e: E2eMetrics {
            cohort_rows: outcome.total,
            dim: dim.get(),
            cohort_encode_secs,
            loocv_secs,
            loocv_rows_per_sec: outcome.total as f64 / loocv_secs.max(1e-12),
            hybrid_fit_secs,
            peak_span_depth: report.metrics.peak_span_depth,
        },
        report,
    })
}
