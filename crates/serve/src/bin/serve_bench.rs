//! Serving-plane throughput and recovery benchmark for `cargo xtask bench`.
//!
//! Builds a synthetic cohort, measures snapshot write/open wall time, batch
//! k-NN prediction throughput, and recovery time when a quarter of the
//! shards are destroyed. Emits one flat JSON object (hand-formatted — this
//! crate carries no serde dependency) that `cargo xtask bench` folds into
//! `BENCH_4.json` under the `serve` key.
//!
//! Flags: `--quick` (small cohort for CI), `--seed N`, `--out PATH`
//! (default: stdout). The full profile serves one million records, the
//! scale the paper's cohort would reach as a population-level screen.

use std::path::PathBuf;
use std::process::exit;
use std::time::Instant;

use hyperfex_hdc::binary::Dim;
use hyperfex_serve::{HvStore, ServeError, SyntheticCohort};

struct Profile {
    mode: &'static str,
    dim: usize,
    records: usize,
    queries: usize,
    shards: usize,
}

const QUICK: Profile = Profile {
    mode: "quick",
    dim: 2048,
    records: 20_000,
    queries: 256,
    shards: 8,
};

const FULL: Profile = Profile {
    mode: "full",
    dim: 2048,
    records: 1_000_000,
    queries: 256,
    shards: 16,
};

struct BenchRow {
    mode: &'static str,
    dim: usize,
    records: usize,
    queries: usize,
    shards: usize,
    build_secs: f64,
    snapshot_write_secs: f64,
    snapshot_open_secs: f64,
    recovery_open_secs: f64,
    predictions_per_sec: f64,
    append_records_per_sec: f64,
    dirty_snapshot_secs: f64,
    dirty_shards_written: usize,
}

impl BenchRow {
    /// Flat JSON object; keys follow the bench-compare suffix convention
    /// (`_per_sec` higher-is-better, `_secs` lower-is-better).
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"mode\": \"{}\",\n  \"dim\": {},\n  \"records\": {},\n  \
             \"queries\": {},\n  \"shards\": {},\n  \"build_secs\": {:.6},\n  \
             \"snapshot_write_secs\": {:.6},\n  \"snapshot_open_secs\": {:.6},\n  \
             \"recovery_open_secs\": {:.6},\n  \"predictions_per_sec\": {:.3},\n  \
             \"append_records_per_sec\": {:.3},\n  \"dirty_snapshot_secs\": {:.6},\n  \
             \"dirty_shards_written\": {}\n}}",
            self.mode,
            self.dim,
            self.records,
            self.queries,
            self.shards,
            self.build_secs,
            self.snapshot_write_secs,
            self.snapshot_open_secs,
            self.recovery_open_secs,
            self.predictions_per_sec,
            self.append_records_per_sec,
            self.dirty_snapshot_secs,
            self.dirty_shards_written,
        )
    }
}

fn main() {
    let mut quick = false;
    let mut seed = 7u64;
    let mut out: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args.get(i).map(String::as_str) {
            Some("--quick") => quick = true,
            Some("--seed") => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a number");
                        exit(2);
                    });
                i += 1;
            }
            Some("--out") => {
                out = Some(PathBuf::from(args.get(i + 1).cloned().unwrap_or_else(
                    || {
                        eprintln!("--out needs a path");
                        exit(2);
                    },
                )));
                i += 1;
            }
            Some("--help" | "-h") => {
                println!("usage: serve_bench [--quick] [--seed N] [--out PATH]");
                exit(0);
            }
            Some(other) => {
                eprintln!("unknown flag `{other}` (try --help)");
                exit(2);
            }
            None => break,
        }
        i += 1;
    }

    let profile = if quick { QUICK } else { FULL };
    let row = match run(&profile, seed) {
        Ok(row) => row,
        Err(e) => {
            eprintln!("serve_bench failed: {e}");
            exit(1);
        }
    };
    let json = row.to_json();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("failed to write {}: {e}", path.display());
                exit(1);
            }
            println!("(serve bench written to {})", path.display());
        }
        None => println!("{json}"),
    }
}

fn run(profile: &Profile, seed: u64) -> Result<BenchRow, ServeError> {
    let dim = Dim::try_new(profile.dim)?;
    let cohort = SyntheticCohort::generate(dim, 2, profile.records, profile.dim / 8, seed)?;

    let t = Instant::now();
    let mut store = HvStore::build(&cohort.records, &cohort.labels, profile.shards)?;
    let build_secs = t.elapsed().as_secs_f64();

    let dir = std::env::temp_dir().join(format!("hyperfex-serve-bench-{}", std::process::id()));
    drop(std::fs::remove_dir_all(&dir));

    let t = Instant::now();
    store.save(&dir)?;
    let snapshot_write_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let (reopened, report) = HvStore::open(&dir)?;
    let snapshot_open_secs = t.elapsed().as_secs_f64();
    if !report.quarantined.is_empty() || reopened.n_rows() != profile.records {
        return Err(ServeError::ShardConflict {
            detail: format!(
                "clean reopen lost rows: {} of {} recovered, {} quarantined",
                reopened.n_rows(),
                profile.records,
                report.quarantined.len()
            ),
        });
    }

    // Replace every fourth shard file with junk and time recovery.
    let paths = HvStore::shard_paths(&dir)?;
    for path in paths.iter().step_by(4) {
        std::fs::write(path, [0u8; 16]).map_err(|e| ServeError::io(path, &e))?;
    }
    let t = Instant::now();
    let (_, report) = HvStore::open(&dir)?;
    let recovery_open_secs = t.elapsed().as_secs_f64();
    let expected_victims = paths.iter().step_by(4).count();
    if report.quarantined.len() != expected_victims || !report.is_complete() {
        return Err(ServeError::ShardConflict {
            detail: format!(
                "recovery accounting is off: {} quarantined, expected {expected_victims}",
                report.quarantined.len()
            ),
        });
    }

    let queries = &cohort.records[..profile.queries.min(cohort.records.len())];
    let t = Instant::now();
    let predictions = reopened.predict_batch(queries, 5)?;
    let predict_secs = t.elapsed().as_secs_f64();

    // Incremental ingest: stream a 10% tail into the recovered store in
    // micro-batch-sized appends, then roll a dirty snapshot. The append
    // crosses at least one shard boundary, so the dirty save includes the
    // worst case (stale `n_shards` headers forcing a full rewrite).
    let mut reopened = reopened;
    let tail = (profile.records / 10).max(1);
    let t = Instant::now();
    for chunk_start in (0..tail).step_by(1024) {
        let chunk = chunk_start..(chunk_start + 1024).min(tail);
        reopened.append_batch(&cohort.records[chunk.clone()], &cohort.labels[chunk])?;
    }
    let append_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let dirty_shards_written = reopened.save_dirty(&dir)?;
    let dirty_snapshot_secs = t.elapsed().as_secs_f64();
    let (checked, report) = HvStore::open(&dir)?;
    if !report.quarantined.is_empty() || checked.n_rows() != profile.records + tail {
        return Err(ServeError::ShardConflict {
            detail: format!(
                "rolling snapshot lost rows: {} of {} recovered, {} quarantined",
                checked.n_rows(),
                profile.records + tail,
                report.quarantined.len()
            ),
        });
    }

    drop(std::fs::remove_dir_all(&dir));
    Ok(BenchRow {
        mode: profile.mode,
        dim: profile.dim,
        records: profile.records,
        queries: predictions.len(),
        shards: profile.shards,
        build_secs,
        snapshot_write_secs,
        snapshot_open_secs,
        recovery_open_secs,
        predictions_per_sec: predictions.len() as f64 / predict_secs.max(1e-12),
        append_records_per_sec: tail as f64 / append_secs.max(1e-12),
        dirty_snapshot_secs,
        dirty_shards_written,
    })
}
