//! Reproduces the four-model comparison from the Sylhet dataset's source
//! paper (Islam et al. 2020) and extends it with hypervector inputs.

use hyperfex::experiments::islam;
use hyperfex_experiments::{fail, Cli};

fn main() {
    let cli = Cli::parse("islam_baselines");
    let datasets = cli.datasets().unwrap_or_else(|e| fail(e));
    let result = islam::run(&datasets, &cli.config).unwrap_or_else(|e| fail(e));
    cli.emit(&result.to_report());
    if result.random_forest_wins_on_features() {
        println!("Random Forest leads on raw features — matching Islam et al.'s headline.");
    }
}
