//! Seeded stratified splitting: train/validation/test fractions (the
//! paper's 70/15/15), stratified k-fold (the paper's 10-fold CV), and
//! leave-one-out index pairs.

use crate::error::DataError;
use crate::table::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Train/validation/test fractions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitFractions {
    /// Training fraction (paper: 0.70).
    pub train: f64,
    /// Validation fraction (paper: 0.15).
    pub validation: f64,
    /// Test fraction (paper: 0.15).
    pub test: f64,
}

impl SplitFractions {
    /// The paper's 70/15/15 split.
    pub const PAPER: SplitFractions = SplitFractions {
        train: 0.70,
        validation: 0.15,
        test: 0.15,
    };

    /// A two-way split with no validation part.
    #[must_use]
    pub fn train_test(train: f64) -> Self {
        Self {
            train,
            validation: 0.0,
            test: 1.0 - train,
        }
    }

    fn validate(&self) -> Result<(), DataError> {
        let sum = self.train + self.validation + self.test;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(DataError::InvalidFractions(format!("sum {sum} != 1")));
        }
        if self.train <= 0.0 || self.test < 0.0 || self.validation < 0.0 {
            return Err(DataError::InvalidFractions(
                "train must be positive; others non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// Row-index partition produced by [`stratified_split`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainTestSplit {
    /// Training row indices.
    pub train: Vec<usize>,
    /// Validation row indices (empty for two-way splits).
    pub validation: Vec<usize>,
    /// Test row indices.
    pub test: Vec<usize>,
}

/// Splits row indices stratified by class: each part receives (up to
/// rounding) the same class proportions as the whole table.
pub fn stratified_split(
    table: &Table,
    fractions: SplitFractions,
    seed: u64,
) -> Result<TrainTestSplit, DataError> {
    fractions.validate()?;
    if table.is_empty() {
        return Err(DataError::EmptyTable);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut split = TrainTestSplit {
        train: Vec::new(),
        validation: Vec::new(),
        test: Vec::new(),
    };
    for class in 0..2 {
        let mut idx: Vec<usize> = (0..table.n_rows())
            .filter(|&i| table.labels()[i] == class)
            .collect();
        if idx.is_empty() {
            continue;
        }
        idx.shuffle(&mut rng);
        let n = idx.len();
        let n_train = ((n as f64) * fractions.train).round() as usize;
        let n_val = ((n as f64) * fractions.validation).round() as usize;
        let n_train = n_train.min(n);
        let n_val = n_val.min(n - n_train);
        if n_train == 0 || (fractions.test > 0.0 && n_train + n_val >= n) {
            return Err(DataError::TooFewSamples { class });
        }
        split.train.extend(&idx[..n_train]);
        split.validation.extend(&idx[n_train..n_train + n_val]);
        split.test.extend(&idx[n_train + n_val..]);
    }
    // Deterministic downstream order regardless of class interleaving.
    split.train.sort_unstable();
    split.validation.sort_unstable();
    split.test.sort_unstable();
    Ok(split)
}

/// One fold's `(train, test)` row-index pair.
pub type FoldIndices = (Vec<usize>, Vec<usize>);

/// Stratified k-fold: returns `k` (train, test) index pairs covering every
/// row exactly once as test.
pub fn stratified_k_fold(
    table: &Table,
    k: usize,
    seed: u64,
) -> Result<Vec<FoldIndices>, DataError> {
    let n = table.n_rows();
    if k < 2 || k > n {
        return Err(DataError::InvalidK { k, n });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Assign each row a fold, round-robin within its class after a
    // shuffle — the standard stratified assignment.
    let mut fold_of = vec![0usize; n];
    for class in 0..2 {
        let mut idx: Vec<usize> = (0..n).filter(|&i| table.labels()[i] == class).collect();
        idx.shuffle(&mut rng);
        for (pos, &i) in idx.iter().enumerate() {
            fold_of[i] = pos % k;
        }
    }
    Ok((0..k)
        .map(|fold| {
            let test: Vec<usize> = (0..n).filter(|&i| fold_of[i] == fold).collect();
            let train: Vec<usize> = (0..n).filter(|&i| fold_of[i] != fold).collect();
            (train, test)
        })
        .collect())
}

/// Leave-one-out index pairs: for each row `i`, train on all others.
pub fn leave_one_out(n: usize) -> impl Iterator<Item = (Vec<usize>, usize)> {
    (0..n).map(move |held| ((0..n).filter(move |&j| j != held).collect(), held))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnSpec;

    fn table(n_neg: usize, n_pos: usize) -> Table {
        let rows: Vec<Vec<f64>> = (0..n_neg + n_pos).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..n_neg + n_pos)
            .map(|i| usize::from(i >= n_neg))
            .collect();
        Table::new(vec![ColumnSpec::continuous("x")], rows, labels).unwrap()
    }

    #[test]
    fn paper_split_has_expected_sizes_and_stratification() {
        let t = table(200, 100);
        let s = stratified_split(&t, SplitFractions::PAPER, 42).unwrap();
        assert_eq!(s.train.len() + s.validation.len() + s.test.len(), 300);
        assert_eq!(s.train.len(), 210);
        assert_eq!(s.validation.len(), 45);
        assert_eq!(s.test.len(), 45);
        // Stratification: class ratio preserved in each part.
        let pos_in = |idx: &[usize]| idx.iter().filter(|&&i| t.labels()[i] == 1).count();
        assert_eq!(pos_in(&s.train), 70);
        assert_eq!(pos_in(&s.validation), 15);
        assert_eq!(pos_in(&s.test), 15);
    }

    #[test]
    fn split_partitions_without_overlap() {
        let t = table(50, 30);
        let s = stratified_split(&t, SplitFractions::PAPER, 7).unwrap();
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.validation)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 80);
    }

    #[test]
    fn different_seeds_differ_same_seed_agrees() {
        let t = table(40, 40);
        let a = stratified_split(&t, SplitFractions::PAPER, 1).unwrap();
        let b = stratified_split(&t, SplitFractions::PAPER, 1).unwrap();
        let c = stratified_split(&t, SplitFractions::PAPER, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn invalid_fractions_rejected() {
        let t = table(10, 10);
        let bad = SplitFractions {
            train: 0.5,
            validation: 0.2,
            test: 0.2,
        };
        assert!(matches!(
            stratified_split(&t, bad, 0),
            Err(DataError::InvalidFractions(_))
        ));
        let neg = SplitFractions {
            train: 1.2,
            validation: -0.1,
            test: -0.1,
        };
        assert!(stratified_split(&t, neg, 0).is_err());
    }

    #[test]
    fn too_few_samples_detected() {
        let t = table(1, 1);
        assert!(matches!(
            stratified_split(&t, SplitFractions::PAPER, 0),
            Err(DataError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn two_way_split_has_empty_validation() {
        let t = table(60, 40);
        let s = stratified_split(&t, SplitFractions::train_test(0.9), 3).unwrap();
        assert!(s.validation.is_empty());
        assert_eq!(s.train.len(), 90);
        assert_eq!(s.test.len(), 10);
    }

    #[test]
    fn k_fold_covers_every_row_once() {
        let t = table(30, 20);
        let folds = stratified_k_fold(&t, 10, 5).unwrap();
        assert_eq!(folds.len(), 10);
        let mut seen = vec![0usize; 50];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 50);
            for &i in test {
                seen[i] += 1;
                assert!(!train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn k_fold_is_stratified() {
        let t = table(40, 20);
        let folds = stratified_k_fold(&t, 4, 5).unwrap();
        for (_, test) in &folds {
            let pos = test.iter().filter(|&&i| t.labels()[i] == 1).count();
            assert_eq!(pos, 5, "each fold should carry 5 positives");
            assert_eq!(test.len(), 15);
        }
    }

    #[test]
    fn invalid_k_rejected() {
        let t = table(5, 5);
        assert!(stratified_k_fold(&t, 1, 0).is_err());
        assert!(stratified_k_fold(&t, 11, 0).is_err());
        assert!(stratified_k_fold(&t, 10, 0).is_ok());
    }

    #[test]
    fn leave_one_out_pairs() {
        let pairs: Vec<_> = leave_one_out(3).collect();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[1].0, vec![0, 2]);
        assert_eq!(pairs[1].1, 1);
    }
}
