//! Clinical risk scoring (extension of §III-B): a calibrated 0–1 diabetes
//! risk score from class-prototype distances, with online updates for the
//! "regular follow-up visits" scenario the paper sketches.

use crate::error::HyperfexError;
use crate::extractor::HdcFeatureExtractor;
use hyperfex_data::Table;
use hyperfex_hdc::binary::Dim;
use hyperfex_hdc::classify::CentroidClassifier;
use hyperfex_hdc::similarity::risk_score;

/// A prototype-based risk scorer.
///
/// Fit bundles one prototype per class; [`RiskScorer::score`] maps the
/// normalized distance margin through a logistic, so 0.5 means equidistant
/// from both prototypes and values near 1 mean "very close to the diabetic
/// prototype". [`RiskScorer::observe`] folds a newly assessed patient into
/// the prototypes online — no retraining pass required, which is the
/// property the paper highlights for in-situ clinical use.
#[derive(Debug, Clone)]
pub struct RiskScorer {
    extractor: HdcFeatureExtractor,
    centroid: CentroidClassifier,
    /// Logistic slope in units of normalized Hamming margin.
    beta: f64,
}

impl RiskScorer {
    /// Default logistic slope: a 5% bit-margin maps to ≈ 0.82 risk.
    pub const DEFAULT_BETA: f64 = 30.0;

    /// Fits prototypes from a (fully observed) cohort.
    pub fn fit(table: &Table, dim: Dim, seed: u64) -> Result<Self, HyperfexError> {
        let mut extractor = HdcFeatureExtractor::new(dim, seed);
        let hvs = extractor.fit_transform(table)?;
        let mut centroid = CentroidClassifier::new();
        centroid.fit(&hvs, table.labels())?;
        Ok(Self {
            extractor,
            centroid,
            beta: Self::DEFAULT_BETA,
        })
    }

    /// Overrides the logistic slope.
    #[must_use]
    pub fn with_beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Scores one patient record (raw feature values in table column
    /// order): 0 = prototypically non-diabetic, 1 = prototypically
    /// diabetic.
    pub fn score(&self, values: &[f64]) -> Result<f64, HyperfexError> {
        let table_row = self.encode_row(values)?;
        let d = self.centroid.distances(&table_row)?;
        if d.len() < 2 {
            return Err(HyperfexError::Pipeline("scorer needs two classes".into()));
        }
        Ok(risk_score(d[1], d[0], self.beta))
    }

    /// Folds a newly assessed patient into the prototypes (online update).
    pub fn observe(&mut self, values: &[f64], label: usize) -> Result<(), HyperfexError> {
        let hv = self.encode_row(values)?;
        self.centroid.update(&hv, label)?;
        Ok(())
    }

    fn encode_row(&self, values: &[f64]) -> Result<hyperfex_hdc::BinaryHypervector, HyperfexError> {
        use hyperfex_data::{ColumnSpec, Table as T};
        // Reuse the fitted encoder by round-tripping through a one-row
        // table with a synthetic schema of the right arity.
        let columns: Vec<ColumnSpec> = (0..values.len())
            .map(|i| ColumnSpec::continuous(format!("c{i}")))
            .collect();
        let table = T::new(columns, vec![values.to_vec()], vec![0])?;
        let hvs = self.extractor.transform(&table, None)?;
        hvs.into_iter().next().ok_or_else(|| {
            HyperfexError::Pipeline("extractor returned no hypervector for a one-row table".into())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperfex_data::sylhet::{self, SylhetConfig};

    fn scorer() -> (RiskScorer, Table) {
        let table = sylhet::generate(&SylhetConfig {
            n_positive: 60,
            n_negative: 50,
            ..Default::default()
        })
        .unwrap();
        (RiskScorer::fit(&table, Dim::new(2_000), 7).unwrap(), table)
    }

    #[test]
    fn scores_order_prototypical_patients() {
        let (scorer, _) = scorer();
        // A heavily symptomatic middle-aged patient vs an asymptomatic one.
        let symptomatic: Vec<f64> = vec![
            55.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0,
        ];
        let asymptomatic: Vec<f64> = vec![
            35.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0,
        ];
        let hi = scorer.score(&symptomatic).unwrap();
        let lo = scorer.score(&asymptomatic).unwrap();
        assert!(
            hi > lo,
            "symptomatic {hi} should outscore asymptomatic {lo}"
        );
        assert!(hi > 0.5);
        assert!(lo < 0.5);
        assert!((0.0..=1.0).contains(&hi) && (0.0..=1.0).contains(&lo));
    }

    #[test]
    fn beta_controls_steepness() {
        let (scorer, _) = scorer();
        let symptomatic: Vec<f64> = vec![
            55.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0,
        ];
        let steep = scorer.clone().with_beta(60.0).score(&symptomatic).unwrap();
        let shallow = scorer.with_beta(5.0).score(&symptomatic).unwrap();
        assert!(steep > shallow, "steeper slope amplifies the same margin");
    }

    #[test]
    fn online_observation_shifts_the_score() {
        let (mut scorer, _) = scorer();
        let unusual: Vec<f64> = vec![
            80.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0,
        ];
        let before = scorer.score(&unusual).unwrap();
        // Observe several positive patients with this unusual profile.
        for _ in 0..40 {
            scorer.observe(&unusual, 1).unwrap();
        }
        let after = scorer.score(&unusual).unwrap();
        assert!(
            after > before,
            "risk should rise after observing positives with this profile ({before} → {after})"
        );
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let (scorer, _) = scorer();
        assert!(scorer.score(&[1.0, 2.0]).is_err());
    }
}
