//! `cargo xtask bench` / `bench-compare` — the repo's perf pipeline.
//!
//! `bench` runs the criterion micro-benchmark suites (reading the vendored
//! harness's `HYPERFEX_BENCH_JSON` side channel instead of scraping
//! stdout), one instrumented end-to-end run of the `perf_report` binary,
//! one serving-plane run of the `serve_bench` binary (snapshot
//! write/open/recovery wall time plus batch prediction and append
//! throughput), and one gated streaming-vs-batch run of the
//! `stream_bench` binary (flat-memory and throughput-parity evidence for
//! the single-pass encode pipeline), and folds all four into a single
//! machine-readable artifact,
//! `BENCH_4.json`, at the workspace root. `--quick` caps every benchmark
//! at a small sample count and uses the small-dimensionality experiment
//! config, which is what the CI perf-smoke job runs.
//!
//! `bench-compare` diffs the current artifact against the committed
//! `bench/baseline.json`: any tracked metric more than 30% worse fails
//! (non-zero exit), more than 10% worse warns. Direction is inferred from
//! the metric name — `_ns`/`_secs`/`_ms` timings are lower-is-better,
//! `_per_sec` throughputs higher-is-better; everything else (counts,
//! depths, versions) is informational and never compared.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use crate::json::{self, Json};

/// The artifact `bench` writes at the workspace root.
pub const BENCH_ARTIFACT: &str = "BENCH_4.json";
/// The committed reference `bench-compare` diffs against.
pub const BASELINE: &str = "bench/baseline.json";
/// Ratio above which a tracked metric fails the comparison.
pub const FAIL_RATIO: f64 = 1.30;
/// Ratio above which a tracked metric warns.
pub const WARN_RATIO: f64 = 1.10;

/// Runs the full bench pipeline and writes [`BENCH_ARTIFACT`].
pub fn cmd_bench(root: &Path, args: &[String]) -> Result<(), String> {
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(bad) = args.iter().find(|a| *a != "--quick") {
        return Err(format!("bench: unknown flag `{bad}` (only --quick)"));
    }

    let target = root.join("target");
    fs::create_dir_all(&target).map_err(|e| format!("mkdir {}: {e}", target.display()))?;

    // 1. Criterion kernels, collected via the JSON side channel.
    let kernels_path = target.join("bench-kernels.jsonl");
    let _ = fs::remove_file(&kernels_path);
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root)
        .args(["bench", "--locked", "-p", "hyperfex-bench"])
        .env("HYPERFEX_BENCH_JSON", &kernels_path);
    if quick {
        cmd.env("HYPERFEX_BENCH_SAMPLES", "5");
    }
    run_to_completion(cmd, "cargo bench -p hyperfex-bench")?;
    let kernels = read_kernel_lines(&kernels_path)?;
    if kernels.is_empty() {
        return Err(format!(
            "no kernel results in {} — did the bench harness run?",
            kernels_path.display()
        ));
    }

    // 2. Instrumented end-to-end run.
    let perf_path = target.join("perf-report.json");
    let _ = fs::remove_file(&perf_path);
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root).args([
        "run",
        "--locked",
        "--release",
        "-p",
        "hyperfex-experiments",
        "--features",
        "obs",
        "--bin",
        "perf_report",
        "--",
        "--out",
    ]);
    cmd.arg(&perf_path);
    if quick {
        cmd.arg("--quick");
    }
    run_to_completion(cmd, "perf_report")?;
    let perf_text = fs::read_to_string(&perf_path)
        .map_err(|e| format!("reading {}: {e}", perf_path.display()))?;
    let perf = json::parse(&perf_text).map_err(|e| format!("parsing perf report: {e}"))?;
    let mut e2e = match perf.get("e2e") {
        Some(Json::Obj(map)) => map.clone(),
        _ => return Err("perf report has no `e2e` object".to_string()),
    };
    if let Some(wall) = perf.get("report").and_then(|r| r.get("wall_secs")) {
        e2e.insert("pipeline_wall_secs".to_string(), wall.clone());
    }
    for (key, value) in histogram_quantile_rows(&perf) {
        e2e.insert(key, Json::Num(value));
    }

    // 3. Serving-plane throughput and recovery run.
    let serve_path = target.join("serve-bench.json");
    let _ = fs::remove_file(&serve_path);
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root).args([
        "run",
        "--locked",
        "--release",
        "-p",
        "hyperfex-serve",
        "--bin",
        "serve_bench",
        "--",
        "--out",
    ]);
    cmd.arg(&serve_path);
    if quick {
        cmd.arg("--quick");
    }
    run_to_completion(cmd, "serve_bench")?;
    let serve_text = fs::read_to_string(&serve_path)
        .map_err(|e| format!("reading {}: {e}", serve_path.display()))?;
    let serve = json::parse(&serve_text).map_err(|e| format!("parsing serve bench: {e}"))?;
    let Json::Obj(serve_obj) = serve else {
        return Err("serve bench output is not a JSON object".to_string());
    };

    // 4. Streaming-vs-batch encode run (flat-memory evidence for the
    //    single-pass pipeline; `--gate` makes a perf lie a hard failure).
    let stream_path = target.join("stream-bench.json");
    let _ = fs::remove_file(&stream_path);
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root).args([
        "run",
        "--locked",
        "--release",
        "-p",
        "hyperfex-experiments",
        "--features",
        "obs",
        "--bin",
        "stream_bench",
        "--",
        "--gate",
        "--out",
    ]);
    cmd.arg(&stream_path);
    if quick {
        cmd.arg("--quick");
    }
    run_to_completion(cmd, "stream_bench")?;
    let stream_text = fs::read_to_string(&stream_path)
        .map_err(|e| format!("reading {}: {e}", stream_path.display()))?;
    let stream = json::parse(&stream_text).map_err(|e| format!("parsing stream bench: {e}"))?;
    let Json::Obj(stream_obj) = stream else {
        return Err("stream bench output is not a JSON object".to_string());
    };

    // 5. Fold into the artifact.
    let mut doc = BTreeMap::new();
    doc.insert("schema_version".to_string(), Json::Num(1.0));
    doc.insert(
        "mode".to_string(),
        Json::Str(if quick { "quick" } else { "full" }.to_string()),
    );
    doc.insert(
        "kernels_ns".to_string(),
        Json::Obj(
            kernels
                .into_iter()
                .map(|(k, v)| (k, Json::Num(v)))
                .collect(),
        ),
    );
    doc.insert("e2e".to_string(), Json::Obj(e2e));
    doc.insert("serve".to_string(), Json::Obj(serve_obj));
    doc.insert("stream".to_string(), Json::Obj(stream_obj));
    let artifact = root.join(BENCH_ARTIFACT);
    fs::write(&artifact, Json::Obj(doc).to_pretty())
        .map_err(|e| format!("writing {}: {e}", artifact.display()))?;

    // Keep the full instrumented snapshot (spans, counters, histograms)
    // next to the headline artifact; CI uploads both.
    let reports = root.join("reports");
    fs::create_dir_all(&reports).map_err(|e| format!("mkdir {}: {e}", reports.display()))?;
    let perf_copy = reports.join("perf-report.json");
    fs::copy(&perf_path, &perf_copy)
        .map_err(|e| format!("copying perf report to {}: {e}", perf_copy.display()))?;
    println!(
        "xtask bench: wrote {} and {}",
        artifact.display(),
        perf_copy.display()
    );
    Ok(())
}

/// Diffs [`BENCH_ARTIFACT`] against [`BASELINE`]. `Ok(true)` means clean
/// (possibly with warnings); `Ok(false)` means at least one regression.
pub fn cmd_bench_compare(root: &Path, args: &[String]) -> Result<bool, String> {
    let mut baseline_path = root.join(BASELINE);
    let mut current_path = root.join(BENCH_ARTIFACT);
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize| -> Result<PathBuf, String> {
            args.get(i + 1)
                .map(PathBuf::from)
                .ok_or_else(|| format!("missing value for {}", args[i]))
        };
        match args[i].as_str() {
            "--baseline" => {
                baseline_path = value(i)?;
                i += 1;
            }
            "--current" => {
                current_path = value(i)?;
                i += 1;
            }
            other => return Err(format!("bench-compare: unknown flag `{other}`")),
        }
        i += 1;
    }

    let load = |path: &Path| -> Result<Json, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        json::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
    };
    let baseline = load(&baseline_path)?;
    let current = load(&current_path)?;

    let outcome = compare(&baseline, &current, FAIL_RATIO, WARN_RATIO);
    for w in &outcome.warnings {
        println!("warn: {w}");
    }
    for r in &outcome.regressions {
        println!("REGRESSION: {r}");
    }
    println!(
        "xtask bench-compare: {} metric(s) compared, {} warning(s), {} regression(s)",
        outcome.compared,
        outcome.warnings.len(),
        outcome.regressions.len()
    );
    Ok(outcome.regressions.is_empty())
}

/// The result of one baseline comparison.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Metrics worse than the fail threshold.
    pub regressions: Vec<String>,
    /// Metrics worse than the warn threshold, plus structural notes.
    pub warnings: Vec<String>,
    /// How many tracked metrics were present in both documents.
    pub compared: usize,
}

/// Lower-is-better for timings, higher-is-better for throughputs, `None`
/// (untracked) for everything else.
fn direction(key: &str) -> Option<bool> {
    if key.ends_with("_per_sec") {
        Some(false)
    } else if key.starts_with("kernels_ns.")
        || key.ends_with("_ns")
        || key.ends_with("_secs")
        || key.ends_with("_ms")
    {
        Some(true)
    } else {
        None
    }
}

/// Pure comparison over the flattened numeric leaves of both documents.
pub fn compare(baseline: &Json, current: &Json, fail_ratio: f64, warn_ratio: f64) -> Comparison {
    let base = baseline.numeric_leaves();
    let cur = current.numeric_leaves();
    let mut outcome = Comparison::default();
    for (key, &base_value) in &base {
        let Some(lower_is_better) = direction(key) else {
            continue;
        };
        let Some(&cur_value) = cur.get(key) else {
            outcome
                .warnings
                .push(format!("{key}: in baseline but missing from current run"));
            continue;
        };
        if base_value <= 0.0 || cur_value <= 0.0 {
            outcome
                .warnings
                .push(format!("{key}: non-positive value, skipped"));
            continue;
        }
        outcome.compared += 1;
        let ratio = if lower_is_better {
            cur_value / base_value
        } else {
            base_value / cur_value
        };
        let delta_pct = (ratio - 1.0) * 100.0;
        let message = format!(
            "{key}: {base_value:.1} -> {cur_value:.1} ({delta_pct:+.1}% {})",
            if lower_is_better {
                "slower"
            } else {
                "lower throughput"
            }
        );
        if ratio > fail_ratio {
            outcome.regressions.push(message);
        } else if ratio > warn_ratio {
            outcome.warnings.push(message);
        }
    }
    outcome
}

/// Lifts every latency histogram (name ending `_ns`) out of the perf
/// report's metrics snapshot as `<base>_p50_ns` / `<base>_p95_ns` rows
/// for the artifact's `e2e` block, where `<base>` is the histogram name
/// with `/` flattened to `_` and the `_ns` suffix moved after the
/// quantile. The suffix keeps the rows inside `bench-compare`'s
/// lower-is-better tracking.
fn histogram_quantile_rows(perf: &Json) -> Vec<(String, f64)> {
    let Some(Json::Arr(hists)) = perf
        .get("report")
        .and_then(|r| r.get("metrics"))
        .and_then(|m| m.get("histograms"))
    else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for hist in hists {
        let Some(name) = hist.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(base) = name.strip_suffix("_ns") else {
            continue;
        };
        let base = base.replace('/', "_");
        for quantile in ["p50", "p95"] {
            if let Some(value) = hist.get(quantile).and_then(Json::as_f64) {
                out.push((format!("{base}_{quantile}_ns"), value));
            }
        }
    }
    out
}

/// Parses the `HYPERFEX_BENCH_JSON` side-channel file: one JSON object per
/// line, keyed by benchmark name.
fn read_kernel_lines(path: &Path) -> Result<BTreeMap<String, f64>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let value = json::parse(line).map_err(|e| format!("bad kernel line `{line}`: {e}"))?;
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("kernel line missing name: `{line}`"))?;
        let median = value
            .get("median_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("kernel line missing median_ns: `{line}`"))?;
        out.insert(name.to_string(), median);
    }
    Ok(out)
}

fn run_to_completion(mut cmd: Command, what: &str) -> Result<(), String> {
    let status = cmd
        .status()
        .map_err(|e| format!("spawning `{what}`: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("`{what}` exited with {status}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(encode_ns: f64, throughput: f64) -> Json {
        json::parse(&format!(
            r#"{{"schema_version": 1,
                 "kernels_ns": {{"encoding_10k/linear_encode_value": {encode_ns}}},
                 "e2e": {{"loocv_rows_per_sec": {throughput}, "peak_span_depth": 3}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_compare_clean() {
        let a = doc(200.0, 5_000.0);
        let outcome = compare(&a, &a, FAIL_RATIO, WARN_RATIO);
        assert!(outcome.regressions.is_empty());
        assert!(outcome.warnings.is_empty());
        assert_eq!(outcome.compared, 2);
    }

    #[test]
    fn doubled_kernel_time_is_a_regression() {
        let outcome = compare(
            &doc(200.0, 5_000.0),
            &doc(400.0, 5_000.0),
            FAIL_RATIO,
            WARN_RATIO,
        );
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.regressions[0].contains("linear_encode_value"));
    }

    #[test]
    fn halved_throughput_is_a_regression() {
        let outcome = compare(
            &doc(200.0, 5_000.0),
            &doc(200.0, 2_500.0),
            FAIL_RATIO,
            WARN_RATIO,
        );
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.regressions[0].contains("loocv_rows_per_sec"));
    }

    #[test]
    fn twenty_percent_slower_only_warns() {
        let outcome = compare(
            &doc(200.0, 5_000.0),
            &doc(240.0, 5_000.0),
            FAIL_RATIO,
            WARN_RATIO,
        );
        assert!(outcome.regressions.is_empty());
        assert_eq!(outcome.warnings.len(), 1);
    }

    #[test]
    fn improvements_and_untracked_keys_are_silent() {
        // Faster kernel, higher throughput, changed span depth: all fine.
        let outcome = compare(
            &doc(200.0, 5_000.0),
            &doc(100.0, 9_000.0),
            FAIL_RATIO,
            WARN_RATIO,
        );
        assert!(outcome.regressions.is_empty());
        assert!(outcome.warnings.is_empty());
    }

    #[test]
    fn missing_metric_warns_but_does_not_fail() {
        let base = doc(200.0, 5_000.0);
        let cur =
            json::parse(r#"{"kernels_ns": {}, "e2e": {"loocv_rows_per_sec": 5000}}"#).unwrap();
        let outcome = compare(&base, &cur, FAIL_RATIO, WARN_RATIO);
        assert!(outcome.regressions.is_empty());
        assert_eq!(outcome.warnings.len(), 1);
        assert!(outcome.warnings[0].contains("missing"));
    }

    #[test]
    fn serve_rows_are_tracked_with_the_right_directions() {
        let base = json::parse(
            r#"{"serve": {"predictions_per_sec": 1000.0, "recovery_open_secs": 0.1,
                          "records": 20000}}"#,
        )
        .unwrap();
        let cur = json::parse(
            r#"{"serve": {"predictions_per_sec": 400.0, "recovery_open_secs": 0.3,
                          "records": 99}}"#,
        )
        .unwrap();
        let outcome = compare(&base, &cur, FAIL_RATIO, WARN_RATIO);
        // Throughput collapse and recovery slowdown both fail; the record
        // count is informational and never compared.
        assert_eq!(outcome.compared, 2);
        assert_eq!(outcome.regressions.len(), 2);
    }

    #[test]
    fn latency_histograms_become_tracked_quantile_rows() {
        let perf = json::parse(
            r#"{"report": {"metrics": {"histograms": [
                 {"name": "perf/predict_query_ns", "p50": 52000.0, "p95": 61000.0},
                 {"name": "perf/pruned_predict_query_ns", "p50": 10500.0, "p95": null},
                 {"name": "report_test/distance", "p50": 0.5, "p95": 0.9}
               ]}}}"#,
        )
        .unwrap();
        let rows = histogram_quantile_rows(&perf);
        // Value-shaped histograms are skipped; a null quantile is skipped;
        // slashes flatten so the keys stay plain `_ns` metric names.
        assert_eq!(
            rows,
            vec![
                ("perf_predict_query_p50_ns".to_string(), 52_000.0),
                ("perf_predict_query_p95_ns".to_string(), 61_000.0),
                ("perf_pruned_predict_query_p50_ns".to_string(), 10_500.0),
            ]
        );
        for (key, _) in &rows {
            assert_eq!(direction(key), Some(true), "{key} must be tracked");
        }
    }

    #[test]
    fn kernel_side_channel_roundtrip() {
        let dir = std::env::temp_dir().join(format!("xtask-bench-ut-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kernels.jsonl");
        fs::write(
            &path,
            "{\"name\":\"g/a\",\"median_ns\":194.250,\"mad_ns\":2.000,\"samples\":20}\n\
             {\"name\":\"g/b\",\"median_ns\":1000.000,\"mad_ns\":5.000,\"samples\":20}\n",
        )
        .unwrap();
        let kernels = read_kernel_lines(&path).unwrap();
        let _ = fs::remove_dir_all(&dir);
        assert_eq!(kernels.len(), 2);
        assert!((kernels["g/a"] - 194.25).abs() < 1e-9);
    }
}
