//! Adam optimiser (Kingma & Ba 2015) with Keras defaults.

use super::dense::DenseLayer;
use crate::linalg::Matrix;

/// Adam state for a stack of dense layers.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    /// Per-layer first/second moment estimates for weights and biases.
    m_w: Vec<Vec<f64>>,
    v_w: Vec<Vec<f64>>,
    m_b: Vec<Vec<f64>>,
    v_b: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates optimiser state sized to `layers`, with β₁ = 0.9,
    /// β₂ = 0.999, ε = 1e-7 (Keras defaults).
    #[must_use]
    pub fn new(lr: f64, layers: &[DenseLayer]) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-7,
            t: 0,
            m_w: layers
                .iter()
                .map(|l| vec![0.0; l.w.n_rows() * l.w.n_cols()])
                .collect(),
            v_w: layers
                .iter()
                .map(|l| vec![0.0; l.w.n_rows() * l.w.n_cols()])
                .collect(),
            m_b: layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
            v_b: layers.iter().map(|l| vec![0.0; l.b.len()]).collect(),
        }
    }

    /// Advances the shared timestep; call once per batch, before the
    /// per-layer [`Adam::step`] calls.
    pub fn begin_batch(&mut self) {
        self.t += 1;
    }

    /// Applies one Adam update to layer `li`. [`Adam::begin_batch`] must
    /// have been called at least once, otherwise the bias correction would
    /// divide by zero (enforced by a debug assertion).
    pub fn step(&mut self, li: usize, layer: &mut DenseLayer, grad_w: &Matrix, grad_b: &[f32]) {
        debug_assert!(self.t > 0, "call begin_batch before step");
        let t = self.t as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);

        let mw = &mut self.m_w[li];
        let vw = &mut self.v_w[li];
        let cols = layer.w.n_cols();
        for i in 0..layer.w.n_rows() {
            let grow = grad_w.row(i);
            for (j, &gj) in grow.iter().enumerate().take(cols) {
                let g = f64::from(gj);
                let k = i * cols + j;
                mw[k] = self.beta1 * mw[k] + (1.0 - self.beta1) * g;
                vw[k] = self.beta2 * vw[k] + (1.0 - self.beta2) * g * g;
                let update = self.lr * (mw[k] / bc1) / ((vw[k] / bc2).sqrt() + self.eps);
                let w = layer.w.get(i, j);
                layer.w.set(i, j, w - update as f32);
            }
        }
        let mb = &mut self.m_b[li];
        let vb = &mut self.v_b[li];
        for (k, b) in layer.b.iter_mut().enumerate() {
            let g = f64::from(grad_b[k]);
            mb[k] = self.beta1 * mb[k] + (1.0 - self.beta1) * g;
            vb[k] = self.beta2 * vb[k] + (1.0 - self.beta2) * g * g;
            let update = self.lr * (mb[k] / bc1) / ((vb[k] / bc2).sqrt() + self.eps);
            *b -= update as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn first_step_moves_weights_by_about_lr() {
        // With bias correction, the very first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = DenseLayer::glorot(2, 2, &mut rng);
        let before = layer.w.clone();
        let mut adam = Adam::new(0.01, std::slice::from_ref(&layer));
        let grad = Matrix::from_rows(&[vec![100.0, -3.0], vec![0.5, 7.0]]).unwrap();
        adam.begin_batch();
        adam.step(0, &mut layer, &grad, &[1.0, -1.0]);
        for i in 0..2 {
            for j in 0..2 {
                let delta = (layer.w.get(i, j) - before.get(i, j)).abs();
                assert!((delta - 0.01).abs() < 1e-3, "delta {delta}");
            }
        }
        assert!((layer.b[0] + 0.01).abs() < 1e-3);
        assert!((layer.b[1] - 0.01).abs() < 1e-3);
    }

    #[test]
    fn steps_descend_a_quadratic() {
        // Minimise (w − 3)² for a single scalar weight.
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = DenseLayer::glorot(1, 1, &mut rng);
        layer.w.set(0, 0, 0.0);
        let mut adam = Adam::new(0.1, std::slice::from_ref(&layer));
        for _ in 0..300 {
            let g = 2.0 * (layer.w.get(0, 0) - 3.0);
            let grad = Matrix::from_rows(&[vec![g]]).unwrap();
            adam.begin_batch();
            adam.step(0, &mut layer, &grad, &[0.0]);
        }
        assert!(
            (layer.w.get(0, 0) - 3.0).abs() < 0.1,
            "w = {}",
            layer.w.get(0, 0)
        );
    }

    #[test]
    fn zero_gradient_is_a_fixed_point() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = DenseLayer::glorot(2, 1, &mut rng);
        let before = layer.w.clone();
        let mut adam = Adam::new(0.1, std::slice::from_ref(&layer));
        let grad = Matrix::zeros(2, 1);
        adam.begin_batch();
        adam.step(0, &mut layer, &grad, &[0.0]);
        assert_eq!(layer.w, before);
    }
}
