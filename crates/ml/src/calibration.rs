//! Platt scaling (Platt 1999): maps raw decision values to calibrated
//! probabilities `P(y=1|z) = σ(A·z + B)` by maximum likelihood.
//!
//! scikit-learn's `SVC(probability=True)` fits exactly this sigmoid on
//! cross-validated decision values; here it upgrades the heuristic
//! `sigmoid(z)` scores of [`crate::svm::SvcClassifier`] and hinge-loss
//! [`crate::linear::SgdClassifier`] into probabilities usable by the
//! clinical risk workflows.

use crate::error::MlError;
use crate::linear::sigmoid;
use serde::{Deserialize, Serialize};

/// A fitted Platt sigmoid `p = σ(a·z + b)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlattScaling {
    /// Slope (negative when higher decision values mean class 1 — note
    /// Platt's original parameterisation uses `σ(A·f + B)` with A < 0; we
    /// keep the sign convention `p = σ(a·z + b)` with a > 0 for sane
    /// decision functions).
    pub a: f64,
    /// Intercept.
    pub b: f64,
}

impl PlattScaling {
    /// Fits the sigmoid on decision values and 0/1 labels with Newton's
    /// method on the (convex) negative log-likelihood, using Platt's
    /// target smoothing to avoid overfitting extreme probabilities.
    pub fn fit(decision_values: &[f64], labels: &[usize]) -> Result<Self, MlError> {
        if decision_values.len() != labels.len() {
            return Err(MlError::LabelLengthMismatch {
                rows: decision_values.len(),
                labels: labels.len(),
            });
        }
        let n = decision_values.len();
        if n == 0 {
            return Err(MlError::EmptyTrainingSet);
        }
        let n_pos = labels.iter().filter(|&&l| l == 1).count() as f64;
        let n_neg = n as f64 - n_pos;
        if n_pos == 0.0 || n_neg == 0.0 {
            return Err(MlError::SingleClass);
        }
        // Platt's smoothed targets.
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l == 1 { t_pos } else { t_neg })
            .collect();

        let mut a = 1.0f64;
        let mut b = 0.0f64;
        for _ in 0..100 {
            // Gradient and Hessian of NLL w.r.t. (a, b).
            let mut g_a = 0.0;
            let mut g_b = 0.0;
            let mut h_aa = 1e-12;
            let mut h_ab = 0.0;
            let mut h_bb = 1e-12;
            for (&z, &t) in decision_values.iter().zip(&targets) {
                let p = sigmoid(a * z + b);
                let d = p - t;
                let w = (p * (1.0 - p)).max(1e-12);
                g_a += d * z;
                g_b += d;
                h_aa += w * z * z;
                h_ab += w * z;
                h_bb += w;
            }
            // Solve the 2×2 Newton system.
            let det = h_aa * h_bb - h_ab * h_ab;
            if det.abs() < 1e-18 {
                break;
            }
            let da = (g_a * h_bb - g_b * h_ab) / det;
            let db = (g_b * h_aa - g_a * h_ab) / det;
            a -= da;
            b -= db;
            if da.abs() < 1e-10 && db.abs() < 1e-10 {
                break;
            }
        }
        if !(a.is_finite() && b.is_finite()) {
            return Err(MlError::InvalidParameter {
                name: "platt",
                reason: "Newton iteration diverged".into(),
            });
        }
        Ok(Self { a, b })
    }

    /// Calibrated probability for one decision value.
    #[must_use]
    pub fn probability(&self, decision_value: f64) -> f64 {
        sigmoid(self.a * decision_value + self.b)
    }

    /// Calibrated probabilities for a batch.
    #[must_use]
    pub fn probabilities(&self, decision_values: &[f64]) -> Vec<f64> {
        decision_values
            .iter()
            .map(|&z| self.probability(z))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(n: usize, scale: f64, offset: f64) -> (Vec<f64>, Vec<usize>) {
        // Labels follow σ(scale·z + offset) deterministically by threshold.
        let zs: Vec<f64> = (0..n).map(|i| (i as f64 / n as f64) * 8.0 - 4.0).collect();
        let labels: Vec<usize> = zs
            .iter()
            .map(|&z| usize::from(sigmoid(scale * z + offset) > 0.5))
            .collect();
        (zs, labels)
    }

    #[test]
    fn recovers_the_decision_boundary() {
        let (zs, labels) = synthetic(200, 2.0, 1.0);
        let platt = PlattScaling::fit(&zs, &labels).unwrap();
        // Boundary where σ(az+b) = 0.5 is z = −b/a; truth is z = −0.5.
        let boundary = -platt.b / platt.a;
        assert!(
            (boundary + 0.5).abs() < 0.15,
            "boundary {boundary} should be ≈ −0.5"
        );
        assert!(platt.a > 0.0);
    }

    #[test]
    fn probabilities_are_monotone_in_the_decision_value() {
        let (zs, labels) = synthetic(100, 1.0, 0.0);
        let platt = PlattScaling::fit(&zs, &labels).unwrap();
        let p = platt.probabilities(&zs);
        for w in p.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn smoothed_targets_keep_probabilities_off_the_rails() {
        // Perfectly separated data must not produce 0/1 probabilities.
        let zs = vec![-2.0, -1.5, -1.0, 1.0, 1.5, 2.0];
        let labels = vec![0, 0, 0, 1, 1, 1];
        let platt = PlattScaling::fit(&zs, &labels).unwrap();
        let p_lo = platt.probability(-2.0);
        let p_hi = platt.probability(2.0);
        assert!(p_lo > 0.0 && p_lo < 0.5);
        assert!(p_hi < 1.0 && p_hi > 0.5);
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            PlattScaling::fit(&[0.1], &[0, 1]),
            Err(MlError::LabelLengthMismatch { .. })
        ));
        assert!(matches!(
            PlattScaling::fit(&[], &[]),
            Err(MlError::EmptyTrainingSet)
        ));
        assert!(matches!(
            PlattScaling::fit(&[0.1, 0.2], &[1, 1]),
            Err(MlError::SingleClass)
        ));
    }

    #[test]
    fn improves_calibration_of_svc_scores() {
        use crate::svm::{SvcClassifier, SvcParams};
        use crate::traits::Estimator;
        // Overlapping 1-D clusters → decision values need rescaling.
        let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![i as f32 / 10.0]).collect();
        let y: Vec<usize> = (0..60).map(|i| usize::from(i >= 28 && i != 30)).collect();
        let x = crate::linalg::Matrix::from_rows(&rows).unwrap();
        let mut svc = SvcClassifier::new(SvcParams::default());
        svc.fit(&x, &y).unwrap();
        let z = svc.decision_function(&x).unwrap();
        let platt = PlattScaling::fit(&z, &y).unwrap();
        // Mean log loss with calibration should not exceed the raw sigmoid.
        let loss = |p: &[f64]| -> f64 {
            p.iter()
                .zip(&y)
                .map(|(&pi, &yi)| {
                    let pi = pi.clamp(1e-12, 1.0 - 1e-12);
                    if yi == 1 {
                        -pi.ln()
                    } else {
                        -(1.0 - pi).ln()
                    }
                })
                .sum::<f64>()
                / y.len() as f64
        };
        let raw: Vec<f64> = z.iter().map(|&v| sigmoid(v)).collect();
        let calibrated = platt.probabilities(&z);
        assert!(
            loss(&calibrated) <= loss(&raw) + 1e-9,
            "calibrated {} vs raw {}",
            loss(&calibrated),
            loss(&raw)
        );
    }

    #[test]
    fn serde_roundtrip() {
        let platt = PlattScaling { a: 1.5, b: -0.3 };
        let json = serde_json::to_string(&platt).unwrap();
        let back: PlattScaling = serde_json::from_str(&json).unwrap();
        assert_eq!(platt, back);
    }
}
