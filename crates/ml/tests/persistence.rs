//! Model persistence: every fitted classifier serialises to JSON and
//! deserialises to a model with identical predictions — the workflow a
//! deployed clinical scorer needs (train once, ship the artifact).

use hyperfex_ml::prelude::*;
use serde::de::DeserializeOwned;
use serde::Serialize;

fn dataset() -> (Matrix, Vec<usize>) {
    let rows: Vec<Vec<f32>> = (0..40)
        .map(|i| vec![i as f32, (i % 7) as f32, (40 - i) as f32])
        .collect();
    let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
    (Matrix::from_rows(&rows).unwrap(), y)
}

fn roundtrip<M>(mut model: M, name: &str)
where
    M: Estimator + Serialize + DeserializeOwned,
{
    let (x, y) = dataset();
    model
        .fit(&x, &y)
        .unwrap_or_else(|e| panic!("{name}: fit failed: {e}"));
    let before = model.predict(&x).unwrap();
    let json = serde_json::to_string(&model).unwrap_or_else(|e| panic!("{name}: serialize: {e}"));
    let restored: M =
        serde_json::from_str(&json).unwrap_or_else(|e| panic!("{name}: deserialize: {e}"));
    let after = restored.predict(&x).unwrap();
    assert_eq!(
        before, after,
        "{name}: predictions changed across the round trip"
    );
}

#[test]
fn decision_tree_roundtrips() {
    roundtrip(DecisionTreeClassifier::new(TreeParams::default()), "tree");
}

#[test]
fn random_forest_roundtrips() {
    roundtrip(
        RandomForestClassifier::new(RandomForestParams {
            n_estimators: 8,
            ..RandomForestParams::default()
        }),
        "forest",
    );
}

#[test]
fn knn_roundtrips() {
    roundtrip(KnnClassifier::new(KnnParams::default()), "knn");
}

#[test]
fn logistic_regression_roundtrips() {
    roundtrip(
        LogisticRegression::new(LogisticRegressionParams {
            max_iter: 50,
            ..Default::default()
        }),
        "logreg",
    );
}

#[test]
fn sgd_roundtrips() {
    roundtrip(
        SgdClassifier::new(SgdParams {
            max_iter: 20,
            ..Default::default()
        }),
        "sgd",
    );
}

#[test]
fn svc_roundtrips() {
    roundtrip(SvcClassifier::new(SvcParams::default()), "svc");
}

#[test]
fn boosted_models_roundtrip() {
    roundtrip(
        XgBoostClassifier::new(XgBoostParams {
            n_estimators: 6,
            ..XgBoostParams::default()
        }),
        "xgboost",
    );
    roundtrip(
        LightGbmClassifier::new(LightGbmParams {
            n_estimators: 6,
            min_data_in_leaf: 2,
            ..LightGbmParams::default()
        }),
        "lgbm",
    );
    roundtrip(
        CatBoostClassifier::new(CatBoostParams {
            n_estimators: 6,
            ..CatBoostParams::default()
        }),
        "catboost",
    );
}

#[test]
fn sequential_nn_roundtrips() {
    roundtrip(
        SequentialNn::new(SequentialNnParams {
            hidden: vec![8],
            max_epochs: 15,
            ..SequentialNnParams::default()
        }),
        "nn",
    );
}

#[test]
fn naive_bayes_roundtrips() {
    roundtrip(GaussianNb::new(GaussianNbParams::default()), "gaussian-nb");
    roundtrip(
        BernoulliNb::new(BernoulliNbParams::default()),
        "bernoulli-nb",
    );
}

#[test]
fn scalers_roundtrip_with_their_statistics() {
    let (x, _) = dataset();
    let mut scaler = StandardScaler::new();
    let z = scaler.fit_transform(&x).unwrap();
    let json = serde_json::to_string(&scaler).unwrap();
    let restored: StandardScaler = serde_json::from_str(&json).unwrap();
    assert_eq!(restored.transform(&x).unwrap(), z);

    let mut mm = MinMaxScaler::new();
    let z = mm.fit_transform(&x).unwrap();
    let json = serde_json::to_string(&mm).unwrap();
    let restored: MinMaxScaler = serde_json::from_str(&json).unwrap();
    assert_eq!(restored.transform(&x).unwrap(), z);
}
