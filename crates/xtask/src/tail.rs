//! Rule 2: the tail-word invariant.
//!
//! `BinaryHypervector` packs `d` bits into `⌈d/64⌉` words, and every
//! word-level kernel (Hamming popcounts, bit-sliced bundling, rotate
//! permutation) silently assumes bits at or above `d` in the last word are
//! zero. This lint turns that comment-level contract into a machine-checked
//! one: any function in `crates/hdc` that mutably touches packed words must
//! either re-mask via `tail_mask()`, end with a `debug_assert_tail_invariant`
//! exit check, or carry an explicit `// lint: tail-ok (<reason>)`
//! annotation explaining why the invariant holds structurally.

use crate::diag::{Rule, Violation};
use crate::source::{Analysis, FnSpan};

/// Tokens that satisfy the re-mask obligation.
const REMASK_TOKENS: [&str; 2] = ["tail_mask()", "debug_assert_tail_invariant("];

/// The annotation escape hatch (reason required).
const ANNOTATION: &str = "lint: tail-ok (";

/// Checks one `crates/hdc` source file.
pub fn check_file(rel_path: &str, analysis: &Analysis) -> Vec<Violation> {
    let mut out = Vec::new();
    for span in &analysis.functions {
        // Skip functions that are entirely test code.
        if analysis
            .in_test
            .get(span.header_line - 1)
            .copied()
            .unwrap_or(false)
        {
            continue;
        }
        let Some(touch_line) = first_mutable_touch(analysis, span) else {
            continue;
        };
        let satisfied = REMASK_TOKENS
            .iter()
            .any(|t| fn_stripped_contains(analysis, span, t))
            || analysis.fn_has_annotation(span, ANNOTATION);
        if !satisfied {
            out.push(Violation {
                file: rel_path.to_string(),
                line: touch_line,
                rule: Rule::TailInvariant,
                message: format!(
                    "fn `{}` mutates packed words without re-masking — call \
                     `tail_mask()`/`debug_assert_tail_invariant` before returning, or \
                     annotate with `// lint: tail-ok (<reason>)`",
                    span.name
                ),
                line_text: analysis.raw[touch_line - 1].clone(),
            });
        }
    }
    out
}

fn fn_stripped_contains(analysis: &Analysis, span: &FnSpan, needle: &str) -> bool {
    analysis.stripped[span.header_line - 1..span.end_line.min(analysis.stripped.len())]
        .iter()
        .any(|l| l.contains(needle))
}

/// Returns the first line (1-based) of a mutable packed-word touch inside
/// the function, if any.
fn first_mutable_touch(analysis: &Analysis, span: &FnSpan) -> Option<usize> {
    // A `&mut [u64]` parameter means the function writes someone else's
    // packed words (the signature runs up to the body brace).
    for idx in span.header_line - 1..span.body_start_line.min(analysis.stripped.len()) {
        let sig = &analysis.stripped[idx];
        let sig_params = sig.split("->").next().unwrap_or(sig);
        if sig_params.contains("&mut [u64]") {
            return Some(idx + 1);
        }
    }
    for idx in span.header_line - 1..span.end_line.min(analysis.stripped.len()) {
        let line = &analysis.stripped[idx];
        if line.contains(".words_mut()")
            || line.contains("words.iter_mut()")
            || line.contains("words.last_mut()")
            || line.contains("words.fill(")
            || line.contains("words.swap(")
            || indexed_word_write(line)
        {
            return Some(idx + 1);
        }
    }
    None
}

/// Detects `words[…] op=` style writes (`=`, `|=`, `&=`, `^=`, `+=`, …) as
/// opposed to reads like `let x = words[i];`.
fn indexed_word_write(stripped: &str) -> bool {
    let Some(start) = stripped.find("words[") else {
        return false;
    };
    // Find the matching `]` and look at what follows.
    let after = &stripped[start + 5..];
    let mut depth = 0i64;
    let mut close = None;
    for (i, c) in after.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(close) = close else { return false };
    let rest = after[close + 1..].trim_start();
    // Assignment operators; exclude comparisons (`==`, `<=`, `>=`, `!=`).
    for op in ["|=", "&=", "^=", "+=", "-=", "<<=", ">>=", "*=", "/="] {
        if rest.starts_with(op) {
            return true;
        }
    }
    rest.starts_with('=') && !rest.starts_with("==")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Violation> {
        check_file("crates/hdc/src/binary.rs", &Analysis::new(src))
    }

    #[test]
    fn unmasked_word_write_is_flagged() {
        let src = "fn set_bit(&mut self, i: usize) {\n\
                       self.words[i / 64] |= 1u64 << (i % 64);\n\
                   }\n";
        let v = check(src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::TailInvariant);
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn remask_or_exit_assert_satisfies_the_rule() {
        let masked = "fn ones(&mut self) {\n\
                          self.words.fill(u64::MAX);\n\
                          *self.words.last_mut().unwrap() &= self.dim.tail_mask();\n\
                      }\n";
        assert!(check(masked).is_empty());
        let asserted = "fn flip(&mut self, i: usize) {\n\
                            self.words[i / 64] ^= 1;\n\
                            debug_assert_tail_invariant(self.dim, &self.words);\n\
                        }\n";
        assert!(check(asserted).is_empty());
    }

    #[test]
    fn annotation_with_reason_satisfies_the_rule() {
        let src = "// lint: tail-ok (XOR of two tail-clean vectors is tail-clean)\n\
                   fn bind_assign(&mut self, other: &Self) {\n\
                       for (a, b) in self.words.iter_mut().zip(other.words.iter()) { *a ^= b; }\n\
                   }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn mut_u64_slice_params_count_as_word_writes() {
        let src = "fn or_shifted(src: &[u64], dst: &mut [u64]) {\n\
                       for i in 0..dst.len() { }\n\
                   }\n";
        let v = check(src);
        assert_eq!(v.len(), 1);
        // Return types do not count.
        let ret = "fn words_mut(&mut self) -> &mut [u64] {\n    &mut self.words\n}\n";
        assert!(check(ret).is_empty());
    }

    #[test]
    fn reads_are_not_writes() {
        let src = "fn get(&self, i: usize) -> bool {\n\
                       (self.words[i / 64] >> (i % 64)) & 1 == 1\n\
                   }\n\
                   fn count(&self) -> u32 {\n\
                       let first = self.words[0];\n\
                       if first == 0 { 0 } else { 1 }\n\
                   }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn corrupt(hv: &mut Hv) {\n\
                           hv.words_mut()[0] |= 1;\n\
                       }\n\
                   }\n";
        assert!(check(src).is_empty());
    }
}
