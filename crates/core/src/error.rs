//! Unified error type for the end-to-end pipeline.

use hyperfex_data::DataError;
use hyperfex_hdc::HdcError;
use hyperfex_ml::MlError;
use std::fmt;

/// Any failure along the encode → classify pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum HyperfexError {
    /// Error from the hyperdimensional substrate.
    Hdc(HdcError),
    /// Error from the ML substrate.
    Ml(MlError),
    /// Error from the dataset substrate.
    Data(DataError),
    /// Pipeline-level misuse (e.g. transform before fit).
    Pipeline(String),
}

impl fmt::Display for HyperfexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Hdc(e) => write!(f, "hdc: {e}"),
            Self::Ml(e) => write!(f, "ml: {e}"),
            Self::Data(e) => write!(f, "data: {e}"),
            Self::Pipeline(msg) => write!(f, "pipeline: {msg}"),
        }
    }
}

impl std::error::Error for HyperfexError {}

impl From<HdcError> for HyperfexError {
    fn from(e: HdcError) -> Self {
        Self::Hdc(e)
    }
}

impl From<MlError> for HyperfexError {
    fn from(e: MlError) -> Self {
        Self::Ml(e)
    }
}

impl From<DataError> for HyperfexError {
    fn from(e: DataError) -> Self {
        Self::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: HyperfexError = HdcError::EmptyInput.into();
        assert!(e.to_string().starts_with("hdc:"));
        let e: HyperfexError = MlError::NotFitted.into();
        assert!(e.to_string().starts_with("ml:"));
        let e: HyperfexError = DataError::EmptyTable.into();
        assert!(e.to_string().starts_with("data:"));
        let e = HyperfexError::Pipeline("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
