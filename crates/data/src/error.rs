//! Error type for table construction, parsing and splitting.

use std::fmt;

/// Errors produced by the dataset substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A row's length does not match the schema arity.
    ArityMismatch {
        /// Row index.
        row: usize,
        /// Schema arity.
        expected: usize,
        /// Row length found.
        got: usize,
    },
    /// Labels and rows have different lengths.
    LabelLengthMismatch {
        /// Number of rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A split fraction set does not sum to 1 or contains non-positives.
    InvalidFractions(String),
    /// Stratified splitting requires at least one example per class per
    /// part.
    TooFewSamples {
        /// Class that ran out of samples.
        class: usize,
    },
    /// k-fold requires `2 ≤ k ≤ n`.
    InvalidK {
        /// Requested k.
        k: usize,
        /// Available samples.
        n: usize,
    },
    /// CSV parsing failed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A single CSV field failed to parse, with full row/column context.
    ParseField {
        /// 1-based line number (header is line 1).
        line: usize,
        /// Name of the offending column.
        column: String,
        /// The offending field text.
        value: String,
        /// What the parser expected (e.g. "a number", "yes/no").
        expected: String,
    },
    /// I/O failure while reading or writing a file.
    Io(String),
    /// An operation that needs data received an empty table.
    EmptyTable,
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// A fault-injection failpoint forced this operation to fail. Only
    /// produced when the `fault-injection` feature is enabled and a chaos
    /// handler is installed; never occurs in production builds.
    Injected {
        /// The failpoint that fired (e.g. `data/load_csv`).
        point: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ArityMismatch { row, expected, got } => {
                write!(f, "row {row} has {got} values, schema expects {expected}")
            }
            Self::LabelLengthMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
            Self::InvalidFractions(msg) => write!(f, "invalid split fractions: {msg}"),
            Self::TooFewSamples { class } => {
                write!(
                    f,
                    "class {class} has too few samples for the requested split"
                )
            }
            Self::InvalidK { k, n } => write!(f, "k = {k} invalid for {n} samples"),
            Self::Parse { line, message } => write!(f, "CSV parse error at line {line}: {message}"),
            Self::ParseField {
                line,
                column,
                value,
                expected,
            } => write!(
                f,
                "CSV parse error at line {line}, column `{column}`: expected {expected}, got `{value}`"
            ),
            Self::Io(msg) => write!(f, "I/O error: {msg}"),
            Self::EmptyTable => write!(f, "table is empty"),
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::Injected { point } => {
                write!(f, "injected fault fired at failpoint `{point}`")
            }
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = DataError::ArityMismatch {
            row: 7,
            expected: 8,
            got: 6,
        };
        assert!(e.to_string().contains("row 7"));
        let e = DataError::Parse {
            line: 3,
            message: "bad float".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = DataError::ParseField {
            line: 4,
            column: "Glucose".into(),
            value: "xx".into(),
            expected: "a number".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 4") && s.contains("Glucose") && s.contains("xx"));
        let e = DataError::InvalidK { k: 1, n: 5 };
        assert!(e.to_string().contains("k = 1"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: DataError = io.into();
        assert!(matches!(e, DataError::Io(_)));
    }
}
