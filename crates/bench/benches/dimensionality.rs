//! Cost side of the paper's §II dimensionality remark: Hamming LOOCV wall
//! time grows linearly in the number of bits while accuracy saturates
//! (see `ablation_dim` for the accuracy side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperfex::experiments::Datasets;
use hyperfex::HammingModel;
use hyperfex_hdc::binary::Dim;
use std::hint::black_box;

fn bench_dims(c: &mut Criterion) {
    let datasets = Datasets::generate(42).unwrap();
    let mut g = c.benchmark_group("hamming_loocv_by_dim_pima_r");
    g.sample_size(10);
    for dim in [1_000usize, 5_000, 10_000, 20_000] {
        g.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &d| {
            b.iter(|| {
                black_box(
                    HammingModel::new(Dim::new(d), 42)
                        .evaluate_loocv(&datasets.pima_r)
                        .unwrap(),
                )
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dims
}
criterion_main!(benches);
