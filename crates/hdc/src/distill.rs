//! Dimension distillation: rank bit positions by class discrimination and
//! prune hypervectors to the top-k serving bits.
//!
//! The paper encodes at 10,000 bits, but predict cost is linear in
//! dimensionality and most bits of a majority-bundled record carry little
//! class signal. This module selects the `k` most discriminative bit
//! positions from trained [`ClassAccumulators`] state and re-packs
//! hypervectors, [`BitMatrix`] banks and encoders into a dense `k`-bit
//! space:
//!
//! * [`discrimination_scores`] — per-bit margin `Σ_c w_c·|p_{c,i} − p_i|`
//!   computed from the accumulators' set-counts (no extra passes over the
//!   data).
//! * [`permutation_scores`] — model-agnostic fallback: permutation
//!   importance of each bit against the quantised class prototypes.
//! * [`BitSelection`] — a validated ascending index set with word-level
//!   column-gather kernels for hypervectors and bit matrices.
//!
//! Gathered outputs preserve the tail-word invariant by construction: bits
//! are emitted densely from position 0, so the final word of a gathered
//! vector only ever holds bits below the pruned dimensionality.

use crate::binary::{BinaryHypervector, Dim, WORD_BITS};
use crate::bitmatrix::BitMatrix;
use crate::classify::ClassAccumulators;
use crate::error::HdcError;
use crate::rng::SplitMix64;

/// An ordered selection of bit positions out of a source dimensionality.
///
/// Invariants (enforced at construction): indices are strictly ascending,
/// unique, non-empty and all below the source dimensionality. Ascending
/// order makes the gather kernel a forward scan of the source words and
/// keeps selections canonical — two selections are equal iff they retain
/// the same bits.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BitSelection {
    from: Dim,
    indices: Vec<u32>,
}

impl BitSelection {
    /// Creates a selection from explicit bit positions.
    ///
    /// `indices` must be non-empty, strictly ascending and all `< from`.
    pub fn new(from: Dim, indices: Vec<u32>) -> Result<Self, HdcError> {
        if indices.is_empty() {
            return Err(HdcError::EmptyInput);
        }
        for pair in indices.windows(2) {
            if pair[0] >= pair[1] {
                return Err(HdcError::InvalidConfig(format!(
                    "bit selection must be strictly ascending: {} then {}",
                    pair[0], pair[1]
                )));
            }
        }
        // lint: index-ok (non-empty checked above)
        let last = indices[indices.len() - 1];
        // lint: cast-ok (u32 bit index widening to usize)
        if last as usize >= from.get() {
            return Err(HdcError::InvalidConfig(format!(
                "bit index {last} out of range for source dimensionality {from}"
            )));
        }
        Ok(Self { from, indices })
    }

    /// Selects the `k` highest-scoring bit positions.
    ///
    /// `scores` must have one entry per source bit. Ties break toward the
    /// lower bit index so equal-scoring runs produce a deterministic
    /// selection; non-finite scores are rejected.
    pub fn top_k(from: Dim, scores: &[f64], k: usize) -> Result<Self, HdcError> {
        if scores.len() != from.get() {
            return Err(HdcError::DimensionMismatch {
                left: from.get(),
                right: scores.len(),
            });
        }
        if k == 0 || k > from.get() {
            return Err(HdcError::InvalidConfig(format!(
                "top-k selection needs 1 ≤ k ≤ {from}, got {k}"
            )));
        }
        if scores.iter().any(|s| !s.is_finite()) {
            return Err(HdcError::NonFiniteValue);
        }
        // lint: cast-ok (bit indices fit u32 — dims are u32-indexable here)
        let mut order: Vec<u32> = (0..scores.len() as u32).collect();
        // lint: index-ok (order holds indices 0..scores.len(); k ≤ len checked)
        // Sort by descending score, ascending index on ties; total because
        // non-finite scores were rejected above.
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut indices: Vec<u32> = order[..k].to_vec();
        indices.sort_unstable();
        Self::new(from, indices)
    }

    /// Selects `k` uniformly random bit positions (the control arm of the
    /// ranked-vs-random Pareto comparison). Deterministic per seed.
    pub fn random(from: Dim, k: usize, seed: u64) -> Result<Self, HdcError> {
        if k == 0 || k > from.get() {
            return Err(HdcError::InvalidConfig(format!(
                "random selection needs 1 ≤ k ≤ {from}, got {k}"
            )));
        }
        // lint: cast-ok (bit indices fit u32 — dims are u32-indexable here)
        let mut all: Vec<u32> = (0..from.get() as u32).collect();
        let mut rng = SplitMix64::new(seed).derive(0xD157, 0);
        rng.shuffle(&mut all);
        all.truncate(k);
        all.sort_unstable();
        Self::new(from, all)
    }

    /// The full-width identity selection (retains every bit, in order).
    #[must_use]
    pub fn identity(from: Dim) -> Self {
        // lint: cast-ok (bit indices fit u32 — dims are u32-indexable here)
        Self {
            from,
            indices: (0..from.get() as u32).collect(),
        }
    }

    /// The source (unpruned) dimensionality.
    #[must_use]
    pub fn source_dim(&self) -> Dim {
        self.from
    }

    /// The pruned (output) dimensionality.
    #[must_use]
    pub fn dim(&self) -> Dim {
        Dim::new(self.indices.len())
    }

    /// Number of retained bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Always `false` — selections are non-empty by construction. Provided
    /// for the conventional `len`/`is_empty` pairing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The retained source bit positions, ascending.
    #[must_use]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The new (pruned-space) position of source bit `i`, if retained.
    #[must_use]
    pub fn position_of(&self, i: u32) -> Option<usize> {
        self.indices.binary_search(&i).ok()
    }

    /// Word-level column gather: packs the selected bits of `src` (a
    /// `source_dim`-sized word slice) densely into `dst` (a `dim()`-sized
    /// word slice). Output bit `p` is source bit `indices[p]`.
    ///
    /// `dst` words beyond the pruned tail are fully overwritten, so the
    /// tail invariant holds on exit regardless of `dst`'s prior contents.
    // lint: tail-ok (dense emission from bit 0: the final chunk is partial,
    // leaving the tail bits of the last word zero by construction)
    fn gather_words(&self, src: &[u64], dst: &mut [u64]) {
        debug_assert_eq!(src.len(), self.from.words());
        debug_assert_eq!(dst.len(), self.dim().words());
        for (w, chunk) in self.indices.chunks(WORD_BITS).enumerate() {
            let mut word = 0u64;
            for (b, &i) in chunk.iter().enumerate() {
                // lint: cast-ok (u32 bit index widening to usize)
                let i = i as usize;
                // lint: index-ok (indices < from by the constructor, so
                // i / 64 < from.words() == src.len())
                let bit = (src[i / WORD_BITS] >> (i % WORD_BITS)) & 1;
                word |= bit << b;
            }
            // lint: index-ok (chunks(64) over dim() bits yields exactly
            // dim().words() chunks)
            dst[w] = word;
        }
    }

    /// Gathers the selected bits of one hypervector into a fresh
    /// `dim()`-bit hypervector.
    // lint: tail-ok (gather_words overwrites every output word and leaves
    // the tail clean by construction)
    pub fn gather_hypervector(
        &self,
        hv: &BinaryHypervector,
    ) -> Result<BinaryHypervector, HdcError> {
        if hv.dim() != self.from {
            return Err(HdcError::DimensionMismatch {
                left: self.from.get(),
                right: hv.dim().get(),
            });
        }
        let mut out = BinaryHypervector::zeros(self.dim());
        self.gather_words(hv.words(), out.words_mut());
        Ok(out)
    }

    /// Gathers the selected columns of a [`BitMatrix`] into a fresh pruned
    /// matrix with the same row count.
    pub fn gather_matrix(&self, m: &BitMatrix) -> Result<BitMatrix, HdcError> {
        if m.dim() != self.from {
            return Err(HdcError::DimensionMismatch {
                left: self.from.get(),
                right: m.dim().get(),
            });
        }
        let out_dim = self.dim();
        let words_per_row = out_dim.words();
        let mut words = vec![0u64; m.n_rows() * words_per_row];
        for (r, dst) in words.chunks_mut(words_per_row).enumerate() {
            self.gather_words(m.row_words(r), dst);
        }
        BitMatrix::from_words(m.n_rows(), out_dim, words)
    }
}

/// Per-bit class-discrimination margin from trained accumulator state.
///
/// With `p_{c,i} = ones[c][i] / totals[c]` (the fraction of class `c`'s
/// weight whose hypervectors set bit `i`) and the class-prior mixture
/// `p_i = Σ_c totals[c]·p_{c,i} / Σ_c totals[c]`, the score is the
/// prior-weighted margin
///
/// ```text
/// score_i = Σ_c (totals[c] / total) · |p_{c,i} − p_i|
/// ```
///
/// A bit whose set-probability is identical across classes scores 0 (it
/// can never move a Hamming comparison between class prototypes); a bit
/// that perfectly splits the classes scores the prior-balance bound. The
/// scores are computed purely from the accumulators — no pass over the
/// training hypervectors is needed.
///
/// Requires at least two classes with positive total weight; classes with
/// non-positive totals (fully decayed or subtracted away) are skipped.
pub fn discrimination_scores(acc: &ClassAccumulators) -> Result<Vec<f64>, HdcError> {
    let dim = acc.dim().get();
    let (ones, totals) = acc.parts();
    let live: Vec<usize> = (0..totals.len()).filter(|&c| totals[c] > 0).collect();
    if live.len() < 2 {
        return Err(HdcError::InvalidConfig(format!(
            "discrimination scores need ≥ 2 classes with positive weight, found {}",
            live.len()
        )));
    }
    let total: f64 = live.iter().map(|&c| f64::from(totals[c])).sum();
    let mut scores = vec![0.0f64; dim];
    // lint: index-ok (from_parts validates every ones[c] has dim entries)
    for i in 0..dim {
        let prior: f64 = live.iter().map(|&c| f64::from(ones[c][i])).sum::<f64>() / total;
        let mut margin = 0.0;
        for &c in &live {
            let weight = f64::from(totals[c]) / total;
            let p = f64::from(ones[c][i]) / f64::from(totals[c]);
            margin += weight * (p - prior).abs();
        }
        scores[i] = margin;
    }
    Ok(scores)
}

/// Permutation-importance fallback: scores each bit by how much shuffling
/// it across rows degrades nearest-prototype accuracy.
///
/// Fits [`ClassAccumulators`] on `rows`/`labels`, precomputes every row's
/// Hamming distance to every class prototype, then for each bit and each
/// of `repeats` seeded permutations re-derives the distances incrementally
/// (permuting one column changes each row-prototype distance by at most
/// ±1) and measures the accuracy drop. The score is the mean drop across
/// repeats; negative drops clamp to zero.
///
/// Cost is `O(bits · repeats · n_rows · n_classes)` — tractable even at
/// the paper's 10,000 bits — but still ~10³× the closed-form
/// [`discrimination_scores`]; use it when accumulator state is unavailable
/// or a model-agnostic cross-check is wanted.
pub fn permutation_scores(
    rows: &BitMatrix,
    labels: &[usize],
    repeats: usize,
    seed: u64,
) -> Result<Vec<f64>, HdcError> {
    let n = rows.n_rows();
    if n == 0 {
        return Err(HdcError::EmptyInput);
    }
    if labels.len() != n {
        return Err(HdcError::LabelLengthMismatch {
            samples: n,
            labels: labels.len(),
        });
    }
    if repeats == 0 {
        return Err(HdcError::InvalidConfig(
            "permutation importance needs repeats ≥ 1".into(),
        ));
    }
    let dim = rows.dim();
    let mut acc = ClassAccumulators::new(dim);
    for (r, &label) in labels.iter().enumerate() {
        acc.grow(label);
        acc.add(label, &rows.row_hypervector(r), 1);
    }
    let n_classes = acc.n_classes();
    let prototypes: Vec<BinaryHypervector> = (0..n_classes)
        .map(|c| acc.prototype(c).cloned().ok_or(HdcError::NotFitted))
        .collect::<Result<_, _>>()?;

    // Base distances, row-major n × n_classes, and baseline accuracy.
    let mut base = vec![0i32; n * n_classes];
    for r in 0..n {
        for (c, proto) in prototypes.iter().enumerate() {
            // lint: cast-ok (hamming ≤ dim < 2^31)
            base[r * n_classes + c] = rows.row_hypervector(r).try_hamming(proto)? as i32;
        }
    }
    let accuracy_of = |distances: &[i32]| -> f64 {
        let correct = (0..n)
            .filter(|&r| {
                let row = &distances[r * n_classes..(r + 1) * n_classes];
                let best = row
                    .iter()
                    .enumerate()
                    .min_by_key(|&(c, &d)| (d, c))
                    .map_or(0, |(c, _)| c);
                best == labels[r]
            })
            .count();
        correct as f64 / n as f64
    };
    let baseline = accuracy_of(&base);

    let root = SplitMix64::new(seed);
    let mut scores = vec![0.0f64; dim.get()];
    let mut perm: Vec<usize> = (0..n).collect();
    let mut distances = base.clone();
    for (bit, score) in scores.iter_mut().enumerate() {
        let proto_bits: Vec<bool> = prototypes.iter().map(|p| p.get(bit)).collect();
        let mut drop_sum = 0.0;
        for rep in 0..repeats {
            // lint: cast-ok (bit < dim and rep < repeats both fit u64)
            let mut rng = root.derive(bit as u64, rep as u64);
            for (i, slot) in perm.iter_mut().enumerate() {
                *slot = i;
            }
            rng.shuffle(&mut perm);
            distances.copy_from_slice(&base);
            for (r, &src) in perm.iter().enumerate() {
                let old = rows.get(r, bit);
                let new = rows.get(src, bit);
                if old == new {
                    continue;
                }
                for (c, &pb) in proto_bits.iter().enumerate() {
                    // Mismatch flips: the permuted bit either joins or
                    // leaves the prototype's disagreement set.
                    let delta = if new != pb { 1 } else { -1 };
                    // lint: index-ok (r < n and c < n_classes span the
                    // row-major distance table exactly)
                    distances[r * n_classes + c] += delta;
                }
            }
            drop_sum += (baseline - accuracy_of(&distances)).max(0.0);
        }
        *score = drop_sum / repeats as f64;
    }
    Ok(scores)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv(dim: Dim, bits: &[usize]) -> BinaryHypervector {
        let mut v = BinaryHypervector::zeros(dim);
        for &b in bits {
            v.set(b, true);
        }
        v
    }

    #[test]
    fn construction_validates_indices() {
        let d = Dim::new(128);
        assert!(BitSelection::new(d, vec![]).is_err());
        assert!(BitSelection::new(d, vec![3, 3]).is_err());
        assert!(BitSelection::new(d, vec![5, 4]).is_err());
        assert!(BitSelection::new(d, vec![0, 128]).is_err());
        let s = BitSelection::new(d, vec![0, 64, 127]).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.dim().get(), 3);
        assert_eq!(s.source_dim(), d);
        assert!(!s.is_empty());
        assert_eq!(s.position_of(64), Some(1));
        assert_eq!(s.position_of(63), None);
    }

    #[test]
    fn top_k_orders_by_score_with_index_tiebreak() {
        let d = Dim::new(6);
        let scores = [0.1, 0.9, 0.5, 0.9, 0.0, 0.5];
        let s = BitSelection::top_k(d, &scores, 3).unwrap();
        // 0.9 at bits 1 and 3, then the 0.5 tie breaks to bit 2.
        assert_eq!(s.indices(), &[1, 2, 3]);
        assert!(BitSelection::top_k(d, &scores, 0).is_err());
        assert!(BitSelection::top_k(d, &scores, 7).is_err());
        assert!(BitSelection::top_k(d, &scores[..5], 2).is_err());
        assert!(BitSelection::top_k(d, &[0.0, f64::NAN, 0.0, 0.0, 0.0, 0.0], 2).is_err());
    }

    #[test]
    fn random_selection_is_deterministic_and_seed_sensitive() {
        let d = Dim::new(1_000);
        let a = BitSelection::random(d, 100, 7).unwrap();
        let b = BitSelection::random(d, 100, 7).unwrap();
        let c = BitSelection::random(d, 100, 8).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
        // Full-width random selection is the identity set.
        let full = BitSelection::random(d, 1_000, 3).unwrap();
        assert_eq!(full, BitSelection::identity(d));
    }

    #[test]
    fn gather_matches_per_bit_semantics() {
        let d = Dim::new(130);
        let src = hv(d, &[0, 63, 64, 65, 128, 129]);
        let s = BitSelection::new(d, vec![0, 1, 63, 65, 129]).unwrap();
        let out = s.gather_hypervector(&src).unwrap();
        assert_eq!(out.dim().get(), 5);
        let expected = [true, false, true, true, true];
        for (p, &want) in expected.iter().enumerate() {
            assert_eq!(out.get(p), want, "bit {p}");
        }
        assert!(out.tail_invariant_ok());
    }

    #[test]
    fn gather_dimension_mismatch_rejected() {
        let s = BitSelection::new(Dim::new(128), vec![1, 2]).unwrap();
        let wrong = BinaryHypervector::zeros(Dim::new(64));
        assert!(s.gather_hypervector(&wrong).is_err());
        let m = BitMatrix::zeros(3, Dim::new(64));
        assert!(s.gather_matrix(&m).is_err());
    }

    #[test]
    fn identity_gather_is_a_no_op() {
        let d = Dim::new(201);
        let mut rng = SplitMix64::new(5);
        let src = BinaryHypervector::random(d, &mut rng);
        let s = BitSelection::identity(d);
        assert_eq!(s.gather_hypervector(&src).unwrap(), src);
    }

    #[test]
    fn matrix_gather_matches_row_by_row_gather() {
        let d = Dim::new(140);
        let mut rng = SplitMix64::new(11);
        let rows: Vec<BinaryHypervector> = (0..5)
            .map(|_| BinaryHypervector::random(d, &mut rng))
            .collect();
        let m = BitMatrix::from_hypervectors(&rows).unwrap();
        let s = BitSelection::random(d, 70, 21).unwrap();
        let g = s.gather_matrix(&m).unwrap();
        assert_eq!(g.n_rows(), 5);
        assert_eq!(g.dim(), s.dim());
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(g.row_hypervector(r), s.gather_hypervector(row).unwrap());
        }
    }

    #[test]
    fn discrimination_scores_rank_signal_bits_above_noise() {
        // Class 0 always sets bit 3, class 1 never does; bit 7 is always
        // set in both classes; bit 9 is never set.
        let d = Dim::new(64);
        let mut acc = ClassAccumulators::new(d);
        acc.grow(1);
        for _ in 0..10 {
            acc.add(0, &hv(d, &[3, 7]), 1);
            acc.add(1, &hv(d, &[7]), 1);
        }
        let scores = discrimination_scores(&acc).unwrap();
        assert!(scores[3] > 0.4, "separating bit scores high: {}", scores[3]);
        assert_eq!(scores[7], 0.0, "always-set bit carries no signal");
        assert_eq!(scores[9], 0.0, "never-set bit carries no signal");
        let top = BitSelection::top_k(d, &scores, 1).unwrap();
        assert_eq!(top.indices(), &[3]);
    }

    #[test]
    fn discrimination_scores_need_two_live_classes() {
        let d = Dim::new(32);
        let mut acc = ClassAccumulators::new(d);
        acc.grow(0);
        acc.add(0, &hv(d, &[1]), 1);
        assert!(discrimination_scores(&acc).is_err());
        let empty = ClassAccumulators::new(d);
        assert!(discrimination_scores(&empty).is_err());
    }

    #[test]
    fn permutation_scores_find_the_separating_bit() {
        // 20 rows: class = bit 5; bits 0..4 are seeded noise.
        let d = Dim::new(66);
        let mut rng = SplitMix64::new(3);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for r in 0..20 {
            let mut v = BinaryHypervector::zeros(d);
            for b in 0..5 {
                v.set(b, rng.next_bounded(2) == 1);
            }
            let label = r % 2;
            v.set(5, label == 1);
            rows.push(v);
            labels.push(label);
        }
        let m = BitMatrix::from_hypervectors(&rows).unwrap();
        let scores = permutation_scores(&m, &labels, 3, 9).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 5, "scores: {:?}", &scores[..8]);
        // Agreement with the closed-form ranking on the same data.
        let mut acc = ClassAccumulators::new(d);
        for (r, &l) in labels.iter().enumerate() {
            acc.grow(l);
            acc.add(l, &m.row_hypervector(r), 1);
        }
        let closed = discrimination_scores(&acc).unwrap();
        let closed_best = BitSelection::top_k(d, &closed, 1).unwrap();
        assert_eq!(closed_best.indices(), &[5]);
    }

    #[test]
    fn permutation_scores_validate_inputs() {
        let m = BitMatrix::zeros(4, Dim::new(32));
        assert!(permutation_scores(&m, &[0, 1], 1, 0).is_err());
        assert!(permutation_scores(&m, &[0, 1, 0, 1], 0, 0).is_err());
        let empty = BitMatrix::zeros(0, Dim::new(32));
        assert!(permutation_scores(&empty, &[], 1, 0).is_err());
    }
}
