//! Chaos tests for the serving plane, driven by the `hyperfex-faults`
//! harness. Compiled only with `--features fault-injection` (see
//! `[[test]]` in `Cargo.toml`).
//!
//! Three layers get exercised: file-level snapshot corruption scheduled by
//! a [`FaultPlan`] (the recovering reader must quarantine exactly the
//! planned victims and keep serving), the `serve/snapshot_write` failpoint
//! (a crash between write and rename must leave the previous good snapshot
//! intact), and the `serve/snapshot_load` / `serve/batch_predict` seams
//! (injected faults surface as typed errors and are retryable).

use std::path::PathBuf;

use hyperfex_faults::registry;
use hyperfex_faults::{FailRule, FaultAction, FaultPlan};
use hyperfex_hdc::binary::Dim;
use hyperfex_hdc::rng::SplitMix64;
use hyperfex_hdc::HdcError;
use hyperfex_serve::{HvStore, RetryPolicy, ServeError, SyntheticCohort};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("hyperfex-serve-chaos-{tag}-{}", std::process::id()));
    drop(std::fs::remove_dir_all(&dir));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn cohort(seed: u64) -> SyntheticCohort {
    SyntheticCohort::generate(Dim::new(512), 2, 100, 30, seed).unwrap()
}

/// A plan whose snapshot layer is armed hard enough that every victim is
/// guaranteed to be detected (the header clobber destroys the magic).
fn snapshot_plan(seed: u64, victims: usize) -> FaultPlan {
    let mut plan = FaultPlan::none(seed);
    plan.snapshot_victims = victims;
    plan.snapshot_flips = 8;
    plan.snapshot_clobber_header = true;
    plan
}

#[test]
fn planned_corruption_quarantines_exactly_the_victims_and_survivors_serve() {
    let dir = scratch_dir("planned");
    let cohort = cohort(11);
    let n_shards = 5;
    let mut store = HvStore::build(&cohort.records, &cohort.labels, n_shards).unwrap();
    store.save(&dir).unwrap();

    let shard_paths = HvStore::shard_paths(&dir).unwrap();
    let plan = snapshot_plan(42, 2);
    let victims = plan.apply_snapshot_files(&shard_paths).unwrap();
    assert_eq!(victims.len(), 2);

    let (recovered, report) = HvStore::open(&dir).unwrap();
    assert!(report.is_complete());
    assert_eq!(report.total_shards, n_shards);
    // Shard files sort by index, so victim positions ARE shard indices.
    let mut quarantined_indices: Vec<usize> = report
        .quarantined
        .iter()
        .map(|q| {
            q.shard_index.map_or_else(
                || {
                    shard_paths
                        .iter()
                        .position(|p| p.file_name().unwrap().to_string_lossy() == q.file)
                        .unwrap()
                },
                |i| i as usize,
            )
        })
        .collect();
    quarantined_indices.sort_unstable();
    assert_eq!(quarantined_indices, victims);

    // Survivors still classify fresh probes far above the 1/C floor.
    let mut rng = SplitMix64::new(99);
    let total = 40;
    let mut correct = 0;
    for i in 0..total {
        let class = i % 2;
        let probe = cohort.prototypes[class]
            .flip_balanced(30, &mut rng)
            .unwrap();
        if recovered.predict_batch(&[probe], 3).unwrap() == vec![class] {
            correct += 1;
        }
    }
    assert!(correct >= total * 9 / 10, "correct = {correct}/{total}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corruption_replays_byte_identically_from_the_plan_seed() {
    let dir_a = scratch_dir("replay-a");
    let dir_b = scratch_dir("replay-b");
    let cohort = cohort(12);
    let mut store = HvStore::build(&cohort.records, &cohort.labels, 4).unwrap();
    store.save(&dir_a).unwrap();
    store.save(&dir_b).unwrap();

    let plan = snapshot_plan(1234, 2);
    let victims_a = plan
        .apply_snapshot_files(&HvStore::shard_paths(&dir_a).unwrap())
        .unwrap();
    let victims_b = plan
        .apply_snapshot_files(&HvStore::shard_paths(&dir_b).unwrap())
        .unwrap();
    assert_eq!(victims_a, victims_b);

    // The corrupted bytes, the recovery reports and the recovered stores
    // all replay exactly.
    for (a, b) in HvStore::shard_paths(&dir_a)
        .unwrap()
        .iter()
        .zip(&HvStore::shard_paths(&dir_b).unwrap())
    {
        assert_eq!(std::fs::read(a).unwrap(), std::fs::read(b).unwrap());
    }
    let (store_a, report_a) = HvStore::open(&dir_a).unwrap();
    let (store_b, report_b) = HvStore::open(&dir_b).unwrap();
    // Quarantine reasons embed full paths, which differ by directory;
    // everything else must replay exactly.
    assert_eq!(report_a.total_shards, report_b.total_shards);
    assert_eq!(report_a.kept, report_b.kept);
    assert_eq!(
        report_a.accumulators_recovered,
        report_b.accumulators_recovered
    );
    let strip =
        |r: &hyperfex_serve::RecoveryReport, dir: &str| -> Vec<(String, Option<u32>, String)> {
            r.quarantined
                .iter()
                .map(|q| {
                    (
                        q.file.clone(),
                        q.shard_index,
                        q.reason.replace(dir, "<dir>"),
                    )
                })
                .collect()
        };
    assert_eq!(
        strip(&report_a, &dir_a.display().to_string()),
        strip(&report_b, &dir_b.display().to_string())
    );
    assert_eq!(store_a, store_b);
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn injected_write_failure_leaves_the_previous_snapshot_intact() {
    let dir = scratch_dir("atomic");
    let cohort = cohort(13);
    let mut store = HvStore::build(&cohort.records, &cohort.labels, 3).unwrap();
    store.save(&dir).unwrap();
    let before: Vec<Vec<u8>> = HvStore::shard_paths(&dir)
        .unwrap()
        .iter()
        .map(|p| std::fs::read(p).unwrap())
        .collect();

    // A different store tries to overwrite the snapshot, but the write
    // seam fails before any rename happens.
    let mut other = HvStore::build(&cohort.records[..60], &cohort.labels[..60], 3).unwrap();
    {
        let _guard = registry::install(&[FailRule {
            point: "serve/snapshot_write".to_string(),
            action: FaultAction::Fail,
            after: 0,
            times: None,
        }])
        .unwrap();
        let err = other.save(&dir).unwrap_err();
        assert!(
            matches!(err, ServeError::Hdc(HdcError::Injected { ref point }) if point == "serve/snapshot_write"),
            "unexpected error: {err}"
        );
    }

    // Every original shard file is byte-identical and the store reopens.
    let after: Vec<Vec<u8>> = HvStore::shard_paths(&dir)
        .unwrap()
        .iter()
        .map(|p| std::fs::read(p).unwrap())
        .collect();
    assert_eq!(before, after);
    let (reopened, report) = HvStore::open(&dir).unwrap();
    assert_eq!(reopened, store);
    assert!(report.quarantined.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_load_failure_quarantines_every_shard_with_the_seam_name() {
    let dir = scratch_dir("load");
    let cohort = cohort(14);
    let mut store = HvStore::build(&cohort.records, &cohort.labels, 3).unwrap();
    store.save(&dir).unwrap();

    let _guard = registry::install(&[FailRule {
        point: "serve/snapshot_load".to_string(),
        action: FaultAction::Fail,
        after: 0,
        times: None,
    }])
    .unwrap();
    let (recovered, report) = HvStore::open(&dir).unwrap();
    assert!(report.is_complete());
    assert_eq!(report.quarantined.len(), 3);
    assert!(report
        .quarantined
        .iter()
        .all(|q| q.reason.contains("serve/snapshot_load")));
    assert!(!report.accumulators_recovered);
    assert_eq!(
        recovered
            .predict_batch(&cohort.records[..1], 1)
            .unwrap_err(),
        ServeError::NoSurvivors
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_predict_failure_is_retryable_and_backoff_recovers() {
    let cohort = cohort(15);
    let store = HvStore::build(&cohort.records, &cohort.labels, 2).unwrap();

    let _guard = registry::install(&[FailRule {
        point: "serve/batch_predict".to_string(),
        action: FaultAction::Fail,
        after: 0,
        times: Some(2),
    }])
    .unwrap();

    let policy = RetryPolicy {
        base_ms: 1,
        cap_ms: 10,
        max_attempts: 4,
        seed: 5,
    };
    let mut slept = Vec::new();
    let out = policy.execute(
        |_| store.predict_batch(&cohort.records[..4], 1),
        |ms| slept.push(ms),
    );
    // The first two attempts hit the fault window; the third succeeds.
    assert_eq!(out, Ok(cohort.labels[..4].to_vec()));
    assert_eq!(slept.len(), 2);
    assert_eq!(slept, vec![policy.delay_ms(0), policy.delay_ms(1)]);
}
