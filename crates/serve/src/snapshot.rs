//! The durable on-disk shard format: checksummed, versioned, atomic.
//!
//! One snapshot is a directory of self-describing shard files plus an
//! optional accumulator file. Every file is laid out as
//!
//! ```text
//! magic "HFEXSNAP" (8 bytes) | version u32 LE |
//!   section*:  tag (4 bytes) | payload_len u64 LE | payload | crc32 u32 LE
//! ```
//!
//! with sections in a fixed order per file kind. The CRC32 (IEEE
//! polynomial, the same checksum zlib and PNG use) is computed over each
//! section payload independently, so a reader can report *which* section a
//! bit flip landed in. Truncation is caught by the length prefixes (a
//! payload that runs past the end of the file is a typed
//! [`ServeError::Corrupt`], never a panic), header clobbering by the magic
//! and version checks, and trailing garbage by requiring the final section
//! to end exactly at end-of-file.
//!
//! Writers never touch the destination path directly: the encoded bytes go
//! to a `.tmp` sibling which is atomically renamed over the target, so a
//! crash mid-save leaves the previous good file intact. The
//! `serve/snapshot_write` failpoint sits between the temp write and the
//! rename — exactly the window a crash-safety test needs to prove
//! atomicity — and `serve/snapshot_load` arms the read path.

use std::fs;
use std::path::Path;

use hyperfex_hdc::binary::Dim;
use hyperfex_hdc::classify::ClassAccumulators;
use hyperfex_hdc::distill::BitSelection;
use hyperfex_hdc::{failpoint, BitMatrix};

use crate::error::ServeError;

/// Leading bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"HFEXSNAP";
/// Newest format version this build reads and writes.
///
/// Version 2 added the optional distillation-selection file
/// ([`SELECTION_FILE_NAME`]); the shard and accumulator layouts are
/// unchanged, so readers accept [`MIN_VERSION`]`..=`[`VERSION`] and a v1
/// snapshot opens exactly as before (with no selection).
pub const VERSION: u32 = 2;
/// Oldest format version this build still reads.
pub const MIN_VERSION: u32 = 1;
/// Version stamped on files whose layout is unchanged since v1 — shards
/// and accumulators. Writing them as v1 keeps snapshots readable after a
/// rollback to a pre-v2 build (which rejects any version above 1); only
/// the selection file, which older builds never look for, carries
/// [`VERSION`].
const UNCHANGED_LAYOUT_VERSION: u32 = 1;

const TAG_META: [u8; 4] = *b"META";
const TAG_LABELS: [u8; 4] = *b"LABL";
const TAG_BANK: [u8; 4] = *b"BANK";
const TAG_ACCUMS: [u8; 4] = *b"ACCU";
const TAG_SELECTION: [u8; 4] = *b"BSEL";

/// File name of shard `index` inside a snapshot directory.
#[must_use]
pub fn shard_file_name(index: u32) -> String {
    format!("shard-{index:04}.hfex")
}

/// File name of the optional class-accumulator file.
pub const ACCUMS_FILE_NAME: &str = "accums.hfex";

/// File name of the optional distillation-selection file (format v2+).
pub const SELECTION_FILE_NAME: &str = "selection.hfex";

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected), table built at compile time.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        // lint: cast-ok (i < 256 fits u32)
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            j += 1;
        }
        // lint: index-ok (i < 256, the table length, by the loop bound)
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE) of `bytes` — the per-section checksum of the format.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        // lint: cast-ok (masked to 8 bits, fits usize)
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        // lint: index-ok (idx < 256 by the & 0xFF mask)
        crc = CRC_TABLE[idx] ^ (crc >> 8);
    }
    !crc
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

fn put_section(out: &mut Vec<u8>, tag: [u8; 4], payload: &[u8]) {
    out.extend_from_slice(&tag);
    // lint: cast-ok (usize -> u64 widening on 64-bit targets)
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// The single arm site of the `serve/snapshot_load` seam; both readers
/// route through it so chaos plans see one evaluation per file read.
fn check_load_seam() -> Result<(), ServeError> {
    failpoint::check("serve/snapshot_load")?;
    Ok(())
}

/// Writes `bytes` to `path` via a `.tmp` sibling and an atomic rename.
///
/// The `serve/snapshot_write` failpoint fires after the temp file is fully
/// written but before the rename: an injected crash there must leave any
/// previous file at `path` untouched.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, bytes).map_err(|e| ServeError::io(&tmp, &e))?;
    if let Err(injected) = failpoint::check("serve/snapshot_write") {
        // Best-effort cleanup; a leftover temp file is inert.
        drop(fs::remove_file(&tmp));
        return Err(injected.into());
    }
    fs::rename(&tmp, path).map_err(|e| ServeError::io(path, &e))?;
    Ok(())
}

/// One shard of a store, as persisted: its position in the shard set, the
/// labels of its rows, and the packed hypervector bank itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// This shard's index in `0..n_shards`.
    pub shard_index: u32,
    /// Total shard count of the snapshot this shard belongs to.
    pub n_shards: u32,
    /// Per-row class labels (`labels.len() == bank.n_rows()`).
    pub labels: Vec<u32>,
    /// The packed `n_rows x dim` hypervector bank.
    pub bank: BitMatrix,
}

/// Serializes and atomically writes one shard file.
pub fn write_shard(path: &Path, shard: &ShardRecord) -> Result<(), ServeError> {
    let _span = crate::obs::span("serve/snapshot_write");
    if shard.labels.len() != shard.bank.n_rows() {
        return Err(ServeError::ShardConflict {
            detail: format!(
                "shard {} has {} labels for {} bank rows",
                shard.shard_index,
                shard.labels.len(),
                shard.bank.n_rows()
            ),
        });
    }
    if shard.shard_index >= shard.n_shards {
        return Err(ServeError::ShardConflict {
            detail: format!(
                "shard index {} out of range for {} shards",
                shard.shard_index, shard.n_shards
            ),
        });
    }

    let mut meta = Vec::with_capacity(24);
    // lint: cast-ok (usize -> u64 widening on 64-bit targets)
    meta.extend_from_slice(&(shard.bank.dim().get() as u64).to_le_bytes());
    // lint: cast-ok (usize -> u64 widening on 64-bit targets)
    meta.extend_from_slice(&(shard.bank.n_rows() as u64).to_le_bytes());
    meta.extend_from_slice(&shard.shard_index.to_le_bytes());
    meta.extend_from_slice(&shard.n_shards.to_le_bytes());

    let mut labels = Vec::with_capacity(shard.labels.len() * 4);
    for &label in &shard.labels {
        labels.extend_from_slice(&label.to_le_bytes());
    }

    let mut bank = Vec::with_capacity(shard.bank.raw_words().len() * 8);
    for &word in shard.bank.raw_words() {
        bank.extend_from_slice(&word.to_le_bytes());
    }

    let mut out = Vec::with_capacity(16 + meta.len() + labels.len() + bank.len() + 48);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&UNCHANGED_LAYOUT_VERSION.to_le_bytes());
    put_section(&mut out, TAG_META, &meta);
    put_section(&mut out, TAG_LABELS, &labels);
    put_section(&mut out, TAG_BANK, &bank);
    write_atomic(path, &out)
}

/// Serializes and atomically writes the class-accumulator file.
pub fn write_accums(path: &Path, accums: &ClassAccumulators) -> Result<(), ServeError> {
    let _span = crate::obs::span("serve/snapshot_write");
    let (ones, totals) = accums.parts();
    let dim = accums.dim();
    let mut payload = Vec::with_capacity(16 + totals.len() * 4 + ones.len() * dim.get() * 4);
    // lint: cast-ok (usize -> u64 widening on 64-bit targets)
    payload.extend_from_slice(&(dim.get() as u64).to_le_bytes());
    // lint: cast-ok (usize -> u64 widening on 64-bit targets)
    payload.extend_from_slice(&(totals.len() as u64).to_le_bytes());
    for &total in totals {
        payload.extend_from_slice(&total.to_le_bytes());
    }
    for class_ones in ones {
        for &count in class_ones {
            payload.extend_from_slice(&count.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(16 + payload.len() + 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&UNCHANGED_LAYOUT_VERSION.to_le_bytes());
    put_section(&mut out, TAG_ACCUMS, &payload);
    write_atomic(path, &out)
}

/// Serializes and atomically writes the distillation-selection file, so a
/// pruned store round-trips *how* it was pruned — a reopened snapshot can
/// gather new full-width records (or remap an encoder) without the
/// training-time pipeline that produced the selection.
pub fn write_selection(path: &Path, selection: &BitSelection) -> Result<(), ServeError> {
    let _span = crate::obs::span("serve/snapshot_write");
    let indices = selection.indices();
    let mut payload = Vec::with_capacity(16 + indices.len() * 4);
    // lint: cast-ok (usize -> u64 widening on 64-bit targets)
    payload.extend_from_slice(&(selection.source_dim().get() as u64).to_le_bytes());
    // lint: cast-ok (usize -> u64 widening on 64-bit targets)
    payload.extend_from_slice(&(indices.len() as u64).to_le_bytes());
    for &index in indices {
        payload.extend_from_slice(&index.to_le_bytes());
    }
    let mut out = Vec::with_capacity(16 + payload.len() + 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    put_section(&mut out, TAG_SELECTION, &payload);
    write_atomic(path, &out)
}

/// Reads and fully validates the distillation-selection file.
///
/// `BitSelection`'s own constructor re-validates the invariants the format
/// cannot express (strictly ascending indices, all below the source
/// dimensionality), so a corrupted-but-checksum-valid payload still comes
/// back as a typed corruption error.
pub fn read_selection(path: &Path) -> Result<BitSelection, ServeError> {
    let _span = crate::obs::span("serve/snapshot_load");
    check_load_seam()?;
    let bytes = fs::read(path).map_err(|e| ServeError::io(path, &e))?;
    let mut cursor = open_container(path, &bytes)?;
    let payload = cursor.take_section(TAG_SELECTION, "selection")?;
    cursor.expect_exhausted()?;

    let mut inner = Cursor {
        bytes: payload,
        pos: 0,
        path,
    };
    let from_raw = inner.take_u64("selection")?;
    let k_raw = inner.take_u64("selection")?;
    let from = usize::try_from(from_raw)
        .ok()
        .and_then(|d| Dim::try_new(d).ok())
        .ok_or_else(|| {
            inner.corrupt("selection", format!("impossible source dimensionality {from_raw}"))
        })?;
    let k = usize::try_from(k_raw)
        .map_err(|_| inner.corrupt("selection", format!("impossible index count {k_raw}")))?;
    // Checked: a corrupt (attacker-controlled) count must become a typed
    // error, not an overflow panic or a huge Vec::with_capacity abort.
    let expected = k.checked_mul(4).and_then(|b| b.checked_add(16));
    if expected != Some(payload.len()) {
        return Err(inner.corrupt(
            "selection",
            format!(
                "selection payload has {} bytes for a claimed {k_raw} indices",
                payload.len()
            ),
        ));
    }
    // `k` is now bounded by the actual payload size.
    let mut indices = Vec::with_capacity(k);
    for chunk in inner.take(k * 4, "selection")?.chunks_exact(4) {
        let arr: [u8; 4] = chunk
            .try_into()
            .map_err(|_| inner.corrupt("selection", "index read".to_string()))?;
        indices.push(u32::from_le_bytes(arr));
    }
    inner.expect_exhausted()?;
    BitSelection::new(from, indices).map_err(|e| ServeError::Corrupt {
        path: path.display().to_string(),
        section: "selection",
        detail: e.to_string(),
    })
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

/// A bounds-checked reader over a file's bytes: every read is a typed
/// corruption error when it would run past the end.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    fn corrupt(&self, section: &'static str, detail: String) -> ServeError {
        ServeError::Corrupt {
            path: self.path.display().to_string(),
            section,
            detail,
        }
    }

    fn take(&mut self, n: usize, section: &'static str) -> Result<&'a [u8], ServeError> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            self.corrupt(
                section,
                format!("impossible length {n} at offset {}", self.pos),
            )
        })?;
        let slice = self.bytes.get(self.pos..end).ok_or_else(|| {
            self.corrupt(
                section,
                format!(
                    "truncated: needed {n} bytes at offset {}, file has {}",
                    self.pos,
                    self.bytes.len()
                ),
            )
        })?;
        self.pos = end;
        Ok(slice)
    }

    fn take_u32(&mut self, section: &'static str) -> Result<u32, ServeError> {
        let raw = self.take(4, section)?;
        let arr: [u8; 4] = raw
            .try_into()
            .map_err(|_| self.corrupt(section, "u32 read".to_string()))?;
        Ok(u32::from_le_bytes(arr))
    }

    fn take_u64(&mut self, section: &'static str) -> Result<u64, ServeError> {
        let raw = self.take(8, section)?;
        let arr: [u8; 8] = raw
            .try_into()
            .map_err(|_| self.corrupt(section, "u64 read".to_string()))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads one section envelope, verifies tag and checksum, and returns
    /// the payload.
    fn take_section(
        &mut self,
        expect_tag: [u8; 4],
        section: &'static str,
    ) -> Result<&'a [u8], ServeError> {
        let tag = self.take(4, section)?;
        if tag != expect_tag {
            return Err(self.corrupt(
                section,
                format!("expected section tag {expect_tag:?}, found {tag:?}"),
            ));
        }
        let len = self.take_u64(section)?;
        let len = usize::try_from(len)
            .map_err(|_| self.corrupt(section, format!("impossible section length {len}")))?;
        let payload = self.take(len, section)?;
        let stored = self.take_u32(section)?;
        let actual = crc32(payload);
        if stored != actual {
            return Err(self.corrupt(
                section,
                format!("checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"),
            ));
        }
        Ok(payload)
    }

    fn expect_exhausted(&self) -> Result<(), ServeError> {
        if self.pos != self.bytes.len() {
            return Err(self.corrupt(
                "trailer",
                format!(
                    "{} trailing bytes after the final section",
                    self.bytes.len() - self.pos
                ),
            ));
        }
        Ok(())
    }
}

/// Validates the magic and version header; returns a cursor positioned at
/// the first section.
fn open_container<'a>(path: &'a Path, bytes: &'a [u8]) -> Result<Cursor<'a>, ServeError> {
    let mut cursor = Cursor {
        bytes,
        pos: 0,
        path,
    };
    let magic = cursor.take(8, "header").map_err(|_| ServeError::BadMagic {
        path: path.display().to_string(),
    })?;
    if magic != MAGIC {
        return Err(ServeError::BadMagic {
            path: path.display().to_string(),
        });
    }
    let version = cursor.take_u32("header")?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ServeError::UnsupportedVersion {
            path: path.display().to_string(),
            found: version,
            supported: VERSION,
        });
    }
    Ok(cursor)
}

/// Reads and fully validates one shard file.
///
/// Any defect — bad magic, unknown version, checksum mismatch, truncated
/// or oversized section, label/bank arity disagreement, a bank row with
/// bits above the dimensionality — is a typed error; the caller
/// ([`crate::store::HvStore::open`]) turns it into a quarantine entry.
pub fn read_shard(path: &Path) -> Result<ShardRecord, ServeError> {
    let _span = crate::obs::span("serve/snapshot_load");
    check_load_seam()?;
    let bytes = fs::read(path).map_err(|e| ServeError::io(path, &e))?;
    let mut cursor = open_container(path, &bytes)?;

    let meta = cursor.take_section(TAG_META, "meta")?;
    let mut meta_cursor = Cursor {
        bytes: meta,
        pos: 0,
        path,
    };
    let dim_raw = meta_cursor.take_u64("meta")?;
    let n_rows_raw = meta_cursor.take_u64("meta")?;
    let shard_index = meta_cursor.take_u32("meta")?;
    let n_shards = meta_cursor.take_u32("meta")?;
    meta_cursor.expect_exhausted().map_err(|_| {
        cursor.corrupt(
            "meta",
            format!("meta section has {} bytes, expected 24", meta.len()),
        )
    })?;
    let dim = usize::try_from(dim_raw)
        .ok()
        .and_then(|d| Dim::try_new(d).ok())
        .ok_or_else(|| cursor.corrupt("meta", format!("impossible dimensionality {dim_raw}")))?;
    let n_rows = usize::try_from(n_rows_raw)
        .map_err(|_| cursor.corrupt("meta", format!("impossible row count {n_rows_raw}")))?;
    if shard_index >= n_shards {
        return Err(cursor.corrupt(
            "meta",
            format!("shard index {shard_index} out of range for {n_shards} shards"),
        ));
    }

    let labels_raw = cursor.take_section(TAG_LABELS, "labels")?;
    // Checked arithmetic throughout: the row count is corruption
    // controlled, so an oversized value must become a typed error rather
    // than an overflow panic or an absurd Vec::with_capacity.
    if n_rows.checked_mul(4) != Some(labels_raw.len()) {
        return Err(cursor.corrupt(
            "labels",
            format!(
                "label section has {} bytes for a claimed {n_rows} rows",
                labels_raw.len()
            ),
        ));
    }
    let mut labels = Vec::with_capacity(n_rows);
    for chunk in labels_raw.chunks_exact(4) {
        let arr: [u8; 4] = chunk
            .try_into()
            .map_err(|_| cursor.corrupt("labels", "label read".to_string()))?;
        labels.push(u32::from_le_bytes(arr));
    }

    let bank_raw = cursor.take_section(TAG_BANK, "bank")?;
    let expected_words = n_rows.checked_mul(dim.words());
    if expected_words.and_then(|w| w.checked_mul(8)) != Some(bank_raw.len()) {
        return Err(cursor.corrupt(
            "bank",
            format!(
                "bank section has {} bytes for a claimed {n_rows} rows x {} words",
                bank_raw.len(),
                dim.words()
            ),
        ));
    }
    let mut words = Vec::with_capacity(bank_raw.len() / 8);
    for chunk in bank_raw.chunks_exact(8) {
        let arr: [u8; 8] = chunk
            .try_into()
            .map_err(|_| cursor.corrupt("bank", "word read".to_string()))?;
        words.push(u64::from_le_bytes(arr));
    }
    let bank = BitMatrix::from_words(n_rows, dim, words)
        .map_err(|e| cursor.corrupt("bank", e.to_string()))?;
    cursor.expect_exhausted()?;

    Ok(ShardRecord {
        shard_index,
        n_shards,
        labels,
        bank,
    })
}

/// Reads and fully validates the class-accumulator file.
pub fn read_accums(path: &Path) -> Result<ClassAccumulators, ServeError> {
    let _span = crate::obs::span("serve/snapshot_load");
    check_load_seam()?;
    let bytes = fs::read(path).map_err(|e| ServeError::io(path, &e))?;
    let mut cursor = open_container(path, &bytes)?;
    let payload = cursor.take_section(TAG_ACCUMS, "accums")?;
    cursor.expect_exhausted()?;

    let mut inner = Cursor {
        bytes: payload,
        pos: 0,
        path,
    };
    let dim_raw = inner.take_u64("accums")?;
    let n_classes_raw = inner.take_u64("accums")?;
    let dim = usize::try_from(dim_raw)
        .ok()
        .and_then(|d| Dim::try_new(d).ok())
        .ok_or_else(|| inner.corrupt("accums", format!("impossible dimensionality {dim_raw}")))?;
    let n_classes = usize::try_from(n_classes_raw)
        .map_err(|_| inner.corrupt("accums", format!("impossible class count {n_classes_raw}")))?;
    // Checked: the class count is corruption controlled (see the labels
    // check in `read_shard`).
    let expected = dim
        .get()
        .checked_add(1)
        .and_then(|per| per.checked_mul(4))
        .and_then(|per| per.checked_mul(n_classes))
        .and_then(|body| body.checked_add(16));
    if expected != Some(payload.len()) {
        return Err(inner.corrupt(
            "accums",
            format!(
                "accumulator payload has {} bytes for a claimed \
                 {n_classes} classes x dim {dim}",
                payload.len()
            ),
        ));
    }
    let mut totals = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        let arr: [u8; 4] = inner
            .take(4, "accums")?
            .try_into()
            .map_err(|_| inner.corrupt("accums", "total read".to_string()))?;
        totals.push(i32::from_le_bytes(arr));
    }
    let mut ones = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        let mut class_ones = Vec::with_capacity(dim.get());
        for chunk in inner.take(dim.get() * 4, "accums")?.chunks_exact(4) {
            let arr: [u8; 4] = chunk
                .try_into()
                .map_err(|_| inner.corrupt("accums", "count read".to_string()))?;
            class_ones.push(i32::from_le_bytes(arr));
        }
        ones.push(class_ones);
    }
    inner.expect_exhausted()?;
    ClassAccumulators::from_parts(dim, ones, totals).map_err(|e| ServeError::Corrupt {
        path: path.display().to_string(),
        section: "accums",
        detail: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hyperfex_hdc::rng::SplitMix64;
    use hyperfex_hdc::BinaryHypervector;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hyperfex-serve-snap-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_shard(dim_bits: usize, n_rows: usize, seed: u64) -> ShardRecord {
        let mut rng = SplitMix64::new(seed);
        let dim = Dim::new(dim_bits);
        let hvs: Vec<_> = (0..n_rows)
            .map(|_| BinaryHypervector::random(dim, &mut rng))
            .collect();
        ShardRecord {
            shard_index: 2,
            n_shards: 4,
            labels: (0..n_rows).map(|i| (i % 3) as u32).collect(),
            bank: BitMatrix::from_hypervectors(&hvs).unwrap(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn shard_round_trips_across_tail_word_dims() {
        let dir = scratch_dir("roundtrip");
        for (i, dim_bits) in [63usize, 64, 65, 130, 1000].into_iter().enumerate() {
            let shard = sample_shard(dim_bits, 7, i as u64);
            let path = dir.join(format!("rt-{dim_bits}.hfex"));
            write_shard(&path, &shard).unwrap();
            let loaded = read_shard(&path).unwrap();
            assert_eq!(loaded, shard, "dim {dim_bits} must round-trip exactly");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn accums_round_trip_and_reject_bad_payloads() {
        let dir = scratch_dir("accums");
        let dim = Dim::new(70);
        let mut rng = SplitMix64::new(5);
        let mut acc = ClassAccumulators::new(dim);
        for i in 0..20 {
            let hv = BinaryHypervector::random(dim, &mut rng);
            acc.grow(i % 2);
            acc.add(i % 2, &hv, 1);
        }
        let path = dir.join(ACCUMS_FILE_NAME);
        write_accums(&path, &acc).unwrap();
        assert_eq!(read_accums(&path).unwrap(), acc);

        // A flipped payload byte is a checksum mismatch, not a panic.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = read_accums(&path).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Corrupt {
                    section: "accums",
                    ..
                }
            ),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_defects_are_typed() {
        let dir = scratch_dir("header");
        let shard = sample_shard(100, 4, 9);
        let path = dir.join("victim.hfex");
        write_shard(&path, &shard).unwrap();
        let pristine = fs::read(&path).unwrap();

        // Clobbered magic.
        let mut bytes = pristine.clone();
        bytes[0] = b'X';
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_shard(&path).unwrap_err(),
            ServeError::BadMagic { .. }
        ));

        // Future version.
        let mut bytes = pristine.clone();
        bytes[8] = 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_shard(&path).unwrap_err(),
            ServeError::UnsupportedVersion { found, .. } if found != VERSION
        ));

        // Truncation mid-bank.
        let cut = pristine.len() - 11;
        fs::write(&path, &pristine[..cut]).unwrap();
        let err = read_shard(&path).unwrap_err();
        assert!(matches!(err, ServeError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");

        // Trailing garbage.
        let mut bytes = pristine;
        bytes.extend_from_slice(b"junk");
        fs::write(&path, &bytes).unwrap();
        let err = read_shard(&path).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");

        // An empty file fails on the magic, not with a slice panic.
        fs::write(&path, []).unwrap();
        assert!(matches!(
            read_shard(&path).unwrap_err(),
            ServeError::BadMagic { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bank_tail_corruption_is_rejected_by_section_name() {
        let dir = scratch_dir("tail");
        // dim 70: the final word of each row has 58 dead tail bits.
        let shard = sample_shard(70, 3, 13);
        let path = dir.join("victim.hfex");
        write_shard(&path, &shard).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // The bank section is last: its final payload word's top byte sits
        // 5 bytes before EOF (8-byte word, then the 4-byte CRC). Setting a
        // high bit there breaks the tail invariant; recompute the CRC so
        // only the invariant check can catch it.
        let crc_start = bytes.len() - 4;
        let word_top = bytes.len() - 4 - 1;
        bytes[word_top] |= 0x80;
        let bank_payload_len = shard.bank.raw_words().len() * 8;
        let payload_start = crc_start - bank_payload_len;
        let fixed = crc32(&bytes[payload_start..crc_start]);
        bytes[crc_start..].copy_from_slice(&fixed.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = read_shard(&path).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Corrupt {
                    section: "bank",
                    ..
                }
            ),
            "{err}"
        );
        assert!(err.to_string().contains("dim"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn selection_round_trips_and_rejects_corruption() {
        let dir = scratch_dir("selection");
        let path = dir.join(SELECTION_FILE_NAME);
        let selection = BitSelection::random(Dim::new(10_050), 2_000, 17).unwrap();
        write_selection(&path, &selection).unwrap();
        assert_eq!(read_selection(&path).unwrap(), selection);

        // A flipped payload byte is a checksum mismatch, not a panic.
        let pristine = fs::read(&path).unwrap();
        let mut bytes = pristine.clone();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_selection(&path).unwrap_err(),
            ServeError::Corrupt {
                section: "selection",
                ..
            }
        ));

        // Checksum-valid but semantically broken payloads are caught by
        // the BitSelection invariants: swap two indices (descending order)
        // and re-seal the CRC.
        let mut bytes = pristine;
        let payload_start = 8 + 4 + 4 + 8; // magic, version, tag, len
        let first_index = payload_start + 16;
        let (a, b) = (first_index, first_index + 4);
        for i in 0..4 {
            bytes.swap(a + i, b + i);
        }
        let crc_start = bytes.len() - 4;
        let fixed = crc32(&bytes[payload_start..crc_start]);
        bytes[crc_start..].copy_from_slice(&fixed.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = read_selection(&path).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Corrupt {
                    section: "selection",
                    ..
                }
            ),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_1_snapshots_still_read() {
        // v2 changed nothing about the shard layout; a file stamped v1
        // must parse identically, and a future version must stay typed.
        let dir = scratch_dir("versions");
        let shard = sample_shard(100, 4, 31);
        let path = dir.join("v1.hfex");
        write_shard(&path, &shard).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // Unchanged-layout files are stamped v1 natively, so a rollback
        // to a pre-v2 build (which rejects version != 1) can still read
        // every shard this build writes.
        assert_eq!(bytes[8..12], 1u32.to_le_bytes());
        assert_eq!(read_shard(&path).unwrap(), shard);
        bytes[8..12].copy_from_slice(&VERSION.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert_eq!(read_shard(&path).unwrap(), shard);

        bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_shard(&path).unwrap_err(),
            ServeError::UnsupportedVersion { found, .. } if found == VERSION + 1
        ));

        // The accumulator writer makes the same rollback promise; only
        // the selection file (older builds never open it) carries v2.
        let mut acc = ClassAccumulators::new(Dim::new(32));
        acc.grow(0);
        let acc_path = dir.join(ACCUMS_FILE_NAME);
        write_accums(&acc_path, &acc).unwrap();
        assert_eq!(fs::read(&acc_path).unwrap()[8..12], 1u32.to_le_bytes());
        let sel_path = dir.join(SELECTION_FILE_NAME);
        let selection = BitSelection::random(Dim::new(64), 16, 3).unwrap();
        write_selection(&sel_path, &selection).unwrap();
        assert_eq!(fs::read(&sel_path).unwrap()[8..12], VERSION.to_le_bytes());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn selection_with_absurd_claimed_count_is_typed_corruption() {
        // A checksum-valid payload claiming ~u64::MAX indices must come
        // back as a typed error — not an arithmetic-overflow panic (debug)
        // or a capacity-overflow abort (release).
        let dir = scratch_dir("hugecount");
        let path = dir.join(SELECTION_FILE_NAME);
        let selection = BitSelection::random(Dim::new(256), 8, 23).unwrap();
        write_selection(&path, &selection).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let payload_start = 8 + 4 + 4 + 8; // magic, version, tag, len
        let count_at = payload_start + 8;
        // Claim a count whose `16 + k * 4` wraps past usize::MAX.
        bytes[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc_start = bytes.len() - 4;
        let fixed = crc32(&bytes[payload_start..crc_start]);
        bytes[crc_start..].copy_from_slice(&fixed.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let err = read_selection(&path).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::Corrupt {
                    section: "selection",
                    ..
                }
            ),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writes_reject_inconsistent_shards() {
        let dir = scratch_dir("reject");
        let mut shard = sample_shard(64, 4, 21);
        shard.labels.pop();
        assert!(matches!(
            write_shard(&dir.join("x.hfex"), &shard).unwrap_err(),
            ServeError::ShardConflict { .. }
        ));
        let mut shard = sample_shard(64, 4, 22);
        shard.shard_index = 9;
        assert!(matches!(
            write_shard(&dir.join("x.hfex"), &shard).unwrap_err(),
            ServeError::ShardConflict { .. }
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
