//! # hyperfex-ml
//!
//! A from-scratch machine-learning substrate providing every model the
//! paper compares (§II: Random Forest, Decision Tree, KNN, XGBoost,
//! CatBoost, SGD, SVC, LGBM, Logistic Regression, and a Sequential Deep
//! Neural Network), plus the dense linear algebra and preprocessing they
//! need. No external ML libraries: the paper's scikit-learn / Keras stack
//! is replaced by Rust implementations with matching loss functions, tree
//! growth strategies and (where relevant) default hyper-parameters.
//!
//! All classifiers implement [`Estimator`]; models that produce calibrated
//! positive-class scores also implement [`ProbabilisticEstimator`].
//!
//! ```
//! use hyperfex_ml::prelude::*;
//!
//! // Tiny 2-feature AND-ish problem.
//! let x = Matrix::from_rows(&[
//!     vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0],
//! ]).unwrap();
//! let y = vec![0, 0, 0, 1];
//! let mut tree = DecisionTreeClassifier::new(TreeParams::default());
//! tree.fit(&x, &y).unwrap();
//! assert_eq!(tree.predict(&x).unwrap(), y);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bayes;
pub mod boost;
pub mod calibration;
pub mod error;
pub mod forest;
pub mod knn;
pub mod linalg;
pub mod linear;
pub mod nn;
pub mod obs;
pub mod online;
pub mod preprocessing;
pub mod stream;
pub mod svm;
pub mod traits;
pub mod tree;

pub use error::MlError;
pub use linalg::Matrix;
pub use traits::{densify, Estimator, Features, ProbabilisticEstimator};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::bayes::{BernoulliNb, BernoulliNbParams, GaussianNb, GaussianNbParams};
    pub use crate::boost::{
        CatBoostClassifier, CatBoostParams, LightGbmClassifier, LightGbmParams, XgBoostClassifier,
        XgBoostParams,
    };
    pub use crate::calibration::PlattScaling;
    pub use crate::error::MlError;
    pub use crate::forest::{RandomForestClassifier, RandomForestParams};
    pub use crate::knn::{KnnClassifier, KnnParams};
    pub use crate::linalg::Matrix;
    pub use crate::linear::{
        LogisticRegression, LogisticRegressionParams, SgdClassifier, SgdLoss, SgdParams,
    };
    pub use crate::nn::{EarlyStopping, SequentialNn, SequentialNnParams};
    pub use crate::online::{OnlineHdcClassifier, OnlineTrainerKind};
    pub use crate::preprocessing::{MinMaxScaler, StandardScaler};
    pub use crate::stream::EstimatorSink;
    pub use crate::svm::{Kernel, SvcClassifier, SvcParams};
    pub use crate::traits::{densify, Estimator, Features, ProbabilisticEstimator};
    pub use crate::tree::{DecisionTreeClassifier, TreeParams};
}
