//! Online HDC trainers: mistake-driven prototype refinement with
//! `partial_fit` streaming semantics.
//!
//! The paper stops at 1-NN Hamming lookup; the standard remedy for its
//! accuracy floor is *retraining* the class prototypes (Imani et al.,
//! Hernández-Cano et al.). This module packages three classic update rules
//! over the shared integer class accumulators of
//! [`accumulator::ClassAccumulators`]:
//!
//! * [`PerceptronTrainer`] — on a mistake, add the example to its true
//!   class superposition and subtract it from the predicted one. This is
//!   exactly the [`CentroidClassifier::retrain_epoch`] rule, generalised to
//!   a streaming API.
//! * [`PassiveAggressiveTrainer`] — margin-scaled integer updates on the
//!   normalized-Hamming score gap: small corrections near the boundary,
//!   large ones for confident mistakes, none once the margin is met.
//! * [`LvqTrainer`] — LVQ1 prototype dynamics: the winning prototype is
//!   pulled toward correctly classified examples and pushed away from
//!   misclassified ones (which also pull the true class).
//!
//! All three share the [`OnlineTrainer`] trait: `update` ingests one
//! `(hypervector, label)` record in O(popcount) time, `partial_fit` streams
//! a batch through `update` (instrumented with the
//! `hdc/trainer_partial_fit` failpoint for chaos testing), and
//! [`fit_pocketed`] wraps multi-epoch training with the same pocket
//! (best-state) guarantee as [`CentroidClassifier::retrain`]: the returned
//! model never scores worse on the training set than the best epoch seen.
//!
//! Labels grow on demand: an `update` with a previously unseen label
//! allocates the class on the spot and seeds its superposition with that
//! example, which is what the add-a-patient-online scenario needs.
//!
//! [`CentroidClassifier::retrain`]: crate::classify::CentroidClassifier::retrain
//! [`CentroidClassifier::retrain_epoch`]: crate::classify::CentroidClassifier::retrain_epoch

pub mod accumulator;
mod lvq;
mod passive_aggressive;
mod perceptron;

pub use lvq::LvqTrainer;
pub use passive_aggressive::PassiveAggressiveTrainer;
pub use perceptron::PerceptronTrainer;

pub use accumulator::ClassAccumulators;

use crate::binary::{BinaryHypervector, Dim};
use crate::error::HdcError;
use crate::failpoint;

/// A streaming prototype trainer over packed binary hypervectors.
///
/// Implementations keep integer class accumulators and quantised
/// prototypes; `update` applies one record's correction and requantises
/// only the touched classes, so single-record latency is microseconds even
/// at the paper's d = 10 000.
pub trait OnlineTrainer {
    /// Short human-readable rule name (e.g. `"perceptron"`).
    fn name(&self) -> &'static str;

    /// The hypervector dimensionality this trainer was constructed for.
    fn dim(&self) -> Dim;

    /// Number of classes currently allocated.
    fn n_classes(&self) -> usize;

    /// The quantised prototype for `class`, if allocated.
    fn prototype(&self, class: usize) -> Option<&BinaryHypervector>;

    /// Discards all learned state, keeping the configuration.
    fn reset(&mut self);

    /// Unconditionally bundles one example into its class superposition
    /// (the single-pass "class bundling" initialisation), growing the class
    /// set if needed. No mistake check is applied.
    fn absorb(&mut self, hv: &BinaryHypervector, label: usize) -> Result<(), HdcError>;

    /// Applies one record's online correction. A previously unseen `label`
    /// grows the class set and seeds the new class with the example.
    /// Returns `true` when the model received a *corrective* update (a
    /// mistake-driven correction or a new-class seed).
    fn update(&mut self, hv: &BinaryHypervector, label: usize) -> Result<bool, HdcError>;

    /// Nearest-prototype prediction (ties break to the lowest class index).
    fn predict(&self, query: &BinaryHypervector) -> Result<usize, HdcError>;

    /// Normalized Hamming distances from `query` to every class prototype.
    fn distances(&self, query: &BinaryHypervector) -> Result<Vec<f64>, HdcError>;

    /// Streams one pass of `(hypervectors, labels)` through [`update`],
    /// returning the number of corrective updates applied. This is the raw
    /// online pass — no pocket restore; use [`fit_pocketed`] for guarded
    /// multi-epoch training.
    ///
    /// [`update`]: OnlineTrainer::update
    fn partial_fit(
        &mut self,
        hypervectors: &[BinaryHypervector],
        labels: &[usize],
    ) -> Result<usize, HdcError> {
        failpoint::check("hdc/trainer_partial_fit")?;
        if hypervectors.len() != labels.len() {
            return Err(HdcError::LabelLengthMismatch {
                samples: hypervectors.len(),
                labels: labels.len(),
            });
        }
        let mut corrections = 0usize;
        for (hv, &label) in hypervectors.iter().zip(labels) {
            if self.update(hv, label)? {
                corrections += 1;
            }
        }
        Ok(corrections)
    }

    /// Predicts a batch sequentially. (Callers with a `Sync` concrete type
    /// can parallelise over this with rayon themselves.)
    fn predict_batch(&self, queries: &[BinaryHypervector]) -> Result<Vec<usize>, HdcError> {
        queries.iter().map(|q| self.predict(q)).collect()
    }
}

/// Multi-epoch training with pocket (best-state) semantics.
///
/// Resets the trainer, bundles the whole set once (class-bundling
/// initialisation), then runs up to `epochs` raw [`OnlineTrainer::partial_fit`]
/// passes, keeping the best-scoring state seen and restoring it at the end.
/// Stops early once a pass applies no corrective updates. Returns the
/// number of epochs actually executed.
pub fn fit_pocketed<T: OnlineTrainer + Clone>(
    trainer: &mut T,
    hypervectors: &[BinaryHypervector],
    labels: &[usize],
    epochs: usize,
) -> Result<usize, HdcError> {
    if hypervectors.is_empty() {
        return Err(HdcError::EmptyInput);
    }
    if hypervectors.len() != labels.len() {
        return Err(HdcError::LabelLengthMismatch {
            samples: hypervectors.len(),
            labels: labels.len(),
        });
    }
    trainer.reset();
    for (hv, &label) in hypervectors.iter().zip(labels) {
        trainer.absorb(hv, label)?;
    }
    let score = |t: &T| -> Result<usize, HdcError> {
        let mut correct = 0usize;
        for (hv, &label) in hypervectors.iter().zip(labels) {
            if t.predict(hv)? == label {
                correct += 1;
            }
        }
        Ok(correct)
    };
    let mut best_score = score(trainer)?;
    let mut best_state = trainer.clone();
    let mut ran = 0usize;
    for epoch in 0..epochs {
        ran = epoch + 1;
        let corrections = trainer.partial_fit(hypervectors, labels)?;
        let s = score(trainer)?;
        if s > best_score {
            best_score = s;
            best_state = trainer.clone();
        }
        if corrections == 0 {
            break;
        }
    }
    if best_score > score(trainer)? {
        *trainer = best_state;
    }
    Ok(ran)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::LinearEncoder;
    use crate::rng::SplitMix64;

    fn training_set(seed: u64) -> (Vec<BinaryHypervector>, Vec<usize>, LinearEncoder) {
        let enc = LinearEncoder::new(Dim::new(2_048), 0.0, 100.0, seed).unwrap();
        let mut hvs = Vec::new();
        let mut labels = Vec::new();
        for v in [0.0, 5.0, 10.0, 45.0] {
            hvs.push(enc.encode(v));
            labels.push(0);
        }
        for v in [50.0, 90.0, 95.0, 100.0] {
            hvs.push(enc.encode(v));
            labels.push(1);
        }
        (hvs, labels, enc)
    }

    fn trainers(dim: Dim) -> Vec<Box<dyn OnlineTrainer>> {
        vec![
            Box::new(PerceptronTrainer::new(dim)),
            Box::new(PassiveAggressiveTrainer::new(dim)),
            Box::new(LvqTrainer::new(dim)),
        ]
    }

    #[test]
    fn every_trainer_learns_the_separable_set() {
        let (hvs, labels, enc) = training_set(11);
        fn check<T: OnlineTrainer + Clone>(
            mut t: T,
            hvs: &[BinaryHypervector],
            labels: &[usize],
            enc: &LinearEncoder,
        ) {
            fit_pocketed(&mut t, hvs, labels, 20).unwrap();
            assert_eq!(
                t.predict(&enc.encode(3.0)).unwrap(),
                0,
                "{} failed low query",
                t.name()
            );
            assert_eq!(
                t.predict(&enc.encode(97.0)).unwrap(),
                1,
                "{} failed high query",
                t.name()
            );
        }
        check(PerceptronTrainer::new(Dim::new(2_048)), &hvs, &labels, &enc);
        check(
            PassiveAggressiveTrainer::new(Dim::new(2_048)),
            &hvs,
            &labels,
            &enc,
        );
        check(LvqTrainer::new(Dim::new(2_048)), &hvs, &labels, &enc);
    }

    #[test]
    fn perceptron_learns_from_a_cold_stream() {
        // Raw streaming (no bundling init, no pocket): the perceptron's
        // mistake-driven pass must still converge on a separable set.
        let (hvs, labels, enc) = training_set(11);
        let mut t = PerceptronTrainer::new(Dim::new(2_048));
        for _ in 0..20 {
            if t.partial_fit(&hvs, &labels).unwrap() == 0 {
                break;
            }
        }
        assert_eq!(t.predict(&enc.encode(3.0)).unwrap(), 0);
        assert_eq!(t.predict(&enc.encode(97.0)).unwrap(), 1);
    }

    #[test]
    fn labels_grow_on_demand() {
        let dim = Dim::new(256);
        let hv = BinaryHypervector::random(dim, &mut SplitMix64::new(7));
        for mut t in trainers(dim) {
            assert_eq!(t.n_classes(), 0, "{}", t.name());
            t.update(&hv, 4).unwrap();
            assert_eq!(t.n_classes(), 5, "{}", t.name());
            assert!(t.prototype(4).is_some());
        }
    }

    #[test]
    fn dimension_mismatch_is_a_typed_error() {
        let wrong = BinaryHypervector::zeros(Dim::new(128));
        for mut t in trainers(Dim::new(2_048)) {
            assert!(
                matches!(
                    t.update(&wrong, 0),
                    Err(HdcError::DimensionMismatch {
                        left: 2_048,
                        right: 128
                    })
                ),
                "{}",
                t.name()
            );
            // The failed update must not have allocated the class.
            assert_eq!(t.n_classes(), 0, "{}", t.name());
            assert!(matches!(
                t.absorb(&wrong, 0),
                Err(HdcError::DimensionMismatch { .. })
            ));
        }
    }

    #[test]
    fn partial_fit_validates_lengths_and_unfitted_predict_errors() {
        let dim = Dim::new(256);
        let hv = BinaryHypervector::random(dim, &mut SplitMix64::new(3));
        for mut t in trainers(dim) {
            assert!(matches!(
                t.partial_fit(std::slice::from_ref(&hv), &[0, 1]),
                Err(HdcError::LabelLengthMismatch {
                    samples: 1,
                    labels: 2
                })
            ));
            assert_eq!(t.predict(&hv), Err(HdcError::NotFitted));
        }
    }

    #[test]
    fn fit_pocketed_never_reduces_training_accuracy() {
        // Ambiguous, imbalanced set where raw updates can oscillate.
        let enc = LinearEncoder::new(Dim::new(2_048), 0.0, 100.0, 23).unwrap();
        let mut hvs = Vec::new();
        let mut labels = Vec::new();
        for v in [0.0, 10.0, 20.0, 30.0, 40.0, 45.0] {
            hvs.push(enc.encode(v));
            labels.push(0);
        }
        for v in [55.0, 60.0] {
            hvs.push(enc.encode(v));
            labels.push(1);
        }
        // After pocketed fit, accuracy is at least the single-pass
        // bundling accuracy of a fresh absorb-only model.
        fn check<T: OnlineTrainer + Clone>(mut t: T, hvs: &[BinaryHypervector], labels: &[usize]) {
            fit_pocketed(&mut t, hvs, labels, 25).unwrap();
            let fitted = count_correct(&t, hvs, labels);
            t.reset();
            for (hv, &label) in hvs.iter().zip(labels) {
                t.absorb(hv, label).unwrap();
            }
            let bundled = count_correct(&t, hvs, labels);
            assert!(fitted >= bundled, "{}: {fitted} < {bundled}", t.name());
        }
        check(PerceptronTrainer::new(Dim::new(2_048)), &hvs, &labels);
        check(
            PassiveAggressiveTrainer::new(Dim::new(2_048)),
            &hvs,
            &labels,
        );
        check(LvqTrainer::new(Dim::new(2_048)), &hvs, &labels);
    }

    fn count_correct(
        t: &(impl OnlineTrainer + ?Sized),
        hvs: &[BinaryHypervector],
        labels: &[usize],
    ) -> usize {
        hvs.iter()
            .zip(labels)
            .filter(|(hv, &l)| t.predict(hv).unwrap() == l)
            .count()
    }

    #[test]
    fn fit_pocketed_validates_inputs() {
        let mut t = PerceptronTrainer::new(Dim::new(64));
        assert_eq!(fit_pocketed(&mut t, &[], &[], 5), Err(HdcError::EmptyInput));
        let hv = BinaryHypervector::zeros(Dim::new(64));
        assert!(matches!(
            fit_pocketed(&mut t, std::slice::from_ref(&hv), &[0, 1], 5),
            Err(HdcError::LabelLengthMismatch { .. })
        ));
    }

    #[test]
    fn predict_batch_matches_sequential() {
        let (hvs, labels, _) = training_set(5);
        let mut t = LvqTrainer::new(Dim::new(2_048));
        fit_pocketed(&mut t, &hvs, &labels, 5).unwrap();
        let batch = t.predict_batch(&hvs).unwrap();
        for (hv, &p) in hvs.iter().zip(&batch) {
            assert_eq!(t.predict(hv).unwrap(), p);
        }
    }

    #[test]
    fn distances_are_normalized() {
        let (hvs, labels, enc) = training_set(9);
        let mut t = PassiveAggressiveTrainer::new(Dim::new(2_048));
        fit_pocketed(&mut t, &hvs, &labels, 5).unwrap();
        let d = t.distances(&enc.encode(10.0)).unwrap();
        assert_eq!(d.len(), 2);
        assert!(d.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!(d[0] < d[1]);
    }
}
