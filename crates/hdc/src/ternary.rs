//! Ternary hypervectors with components in `{-1, 0, +1}`.
//!
//! The paper notes (§II) that "ternary (with values of -1, 0 and 1) and
//! integer hypervectors could also be used". This module provides that
//! backend: two bitplanes (positive and negative) per vector, element-wise
//! multiplication as binding, and integer-sum bundling with a deadzone that
//! maps near-ties to 0 — the property that distinguishes ternary from binary
//! bundling (uncertain bits abstain instead of voting).

use crate::binary::{BinaryHypervector, Dim};
use crate::error::HdcError;
use crate::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// A ternary hypervector.
///
/// Invariant: the positive and negative bitplanes are disjoint
/// (`pos & neg == 0` for every word).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TernaryHypervector {
    pos: BinaryHypervector,
    neg: BinaryHypervector,
}

impl TernaryHypervector {
    /// The all-zero ternary vector.
    #[must_use]
    pub fn zeros(dim: Dim) -> Self {
        Self {
            pos: BinaryHypervector::zeros(dim),
            neg: BinaryHypervector::zeros(dim),
        }
    }

    /// A dense random ternary vector: each component is ±1 with equal
    /// probability (no zeros), mirroring the bipolar seed vectors common in
    /// the HDC literature.
    #[must_use]
    pub fn random_dense(dim: Dim, rng: &mut SplitMix64) -> Self {
        let pos = BinaryHypervector::random(dim, rng);
        let neg = pos.complement();
        Self { pos, neg }
    }

    /// A sparse random ternary vector where each component is +1 with
    /// probability `density/2`, −1 with probability `density/2`, else 0.
    pub fn random_sparse(dim: Dim, density: f64, rng: &mut SplitMix64) -> Result<Self, HdcError> {
        if !(0.0..=1.0).contains(&density) || !density.is_finite() {
            return Err(HdcError::InvalidRange { min: 0.0, max: 1.0 });
        }
        let mut pos = BinaryHypervector::zeros(dim);
        let mut neg = BinaryHypervector::zeros(dim);
        for i in 0..dim.get() {
            let u = rng.next_f64();
            if u < density / 2.0 {
                pos.set(i, true);
            } else if u < density {
                neg.set(i, true);
            }
        }
        Ok(Self { pos, neg })
    }

    /// Lifts a binary hypervector to ternary: 1 → +1, 0 → −1.
    #[must_use]
    pub fn from_binary(hv: &BinaryHypervector) -> Self {
        Self {
            pos: hv.clone(),
            neg: hv.complement(),
        }
    }

    /// Collapses to binary: +1 → 1, −1 and 0 → 0.
    #[must_use]
    pub fn to_binary(&self) -> BinaryHypervector {
        self.pos.clone()
    }

    /// The dimensionality.
    #[must_use]
    pub fn dim(&self) -> Dim {
        self.pos.dim()
    }

    /// Component `i` as −1, 0 or +1.
    #[must_use]
    pub fn get(&self, i: usize) -> i8 {
        if self.pos.get(i) {
            1
        } else if self.neg.get(i) {
            -1
        } else {
            0
        }
    }

    /// Sets component `i`.
    ///
    /// # Panics
    /// Panics if `value` is not −1, 0 or +1.
    pub fn set(&mut self, i: usize, value: i8) {
        assert!(
            (-1..=1).contains(&value),
            "ternary component must be -1, 0 or 1"
        );
        self.pos.set(i, value == 1);
        self.neg.set(i, value == -1);
    }

    /// Number of non-zero components.
    #[must_use]
    pub fn count_nonzero(&self) -> usize {
        self.pos.count_ones() + self.neg.count_ones()
    }

    /// Element-wise product binding. Zero absorbs: `0·x = 0`.
    pub fn bind(&self, other: &Self) -> Result<Self, HdcError> {
        if self.dim() != other.dim() {
            return Err(HdcError::DimensionMismatch {
                left: self.dim().get(),
                right: other.dim().get(),
            });
        }
        let mut out = Self::zeros(self.dim());
        for i in 0..self.dim().get() {
            out.set(i, self.get(i) * other.get(i));
        }
        Ok(out)
    }

    /// Dot-product similarity, in `[-d, d]`.
    pub fn dot(&self, other: &Self) -> Result<i64, HdcError> {
        if self.dim() != other.dim() {
            return Err(HdcError::DimensionMismatch {
                left: self.dim().get(),
                right: other.dim().get(),
            });
        }
        // dot = |agreeing nonzeros| − |disagreeing nonzeros|, computable via
        // bitplane intersections.
        let mut agree = 0i64;
        let mut disagree = 0i64;
        for ((sp, sn), (op, on)) in self
            .pos
            .words()
            .iter()
            .zip(self.neg.words())
            .zip(other.pos.words().iter().zip(other.neg.words()))
        {
            agree += ((sp & op).count_ones() + (sn & on).count_ones()) as i64;
            disagree += ((sp & on).count_ones() + (sn & op).count_ones()) as i64;
        }
        Ok(agree - disagree)
    }

    /// Cosine similarity in `[-1, 1]`; 0 if either vector is all-zero.
    pub fn cosine(&self, other: &Self) -> Result<f64, HdcError> {
        let dot = self.dot(other)? as f64;
        let na = (self.count_nonzero() as f64).sqrt();
        let nb = (other.count_nonzero() as f64).sqrt();
        if na == 0.0 || nb == 0.0 {
            return Ok(0.0);
        }
        Ok(dot / (na * nb))
    }
}

/// Bundles ternary vectors by component-wise integer sum followed by a
/// symmetric deadzone threshold: sums in `[-threshold, threshold]` map to 0,
/// larger magnitudes to ±1.
///
/// With `threshold = 0` this is exact sign bundling (ties → 0, the ternary
/// analogue of majority voting).
pub fn bundle_ternary(
    inputs: &[TernaryHypervector],
    threshold: u32,
) -> Result<TernaryHypervector, HdcError> {
    let first = inputs.first().ok_or(HdcError::EmptyInput)?;
    let dim = first.dim();
    let mut sums = vec![0i32; dim.get()];
    for hv in inputs {
        if hv.dim() != dim {
            return Err(HdcError::DimensionMismatch {
                left: dim.get(),
                right: hv.dim().get(),
            });
        }
        for (i, s) in sums.iter_mut().enumerate() {
            *s += i32::from(hv.get(i));
        }
    }
    let mut out = TernaryHypervector::zeros(dim);
    let t = threshold as i32;
    for (i, &s) in sums.iter().enumerate() {
        if s > t {
            out.set(i, 1);
        } else if s < -t {
            out.set(i, -1);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(31)
    }

    #[test]
    fn dense_random_has_no_zeros() {
        let hv = TernaryHypervector::random_dense(Dim::new(500), &mut rng());
        assert_eq!(hv.count_nonzero(), 500);
    }

    #[test]
    fn sparse_random_respects_density() {
        let hv = TernaryHypervector::random_sparse(Dim::new(10_000), 0.1, &mut rng()).unwrap();
        let nz = hv.count_nonzero();
        assert!((800..=1_200).contains(&nz), "nonzeros = {nz}");
        assert!(TernaryHypervector::random_sparse(Dim::new(8), 1.5, &mut rng()).is_err());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut hv = TernaryHypervector::zeros(Dim::new(8));
        hv.set(0, 1);
        hv.set(1, -1);
        hv.set(2, 0);
        assert_eq!(hv.get(0), 1);
        assert_eq!(hv.get(1), -1);
        assert_eq!(hv.get(2), 0);
        hv.set(0, -1);
        assert_eq!(hv.get(0), -1);
    }

    #[test]
    fn binary_roundtrip() {
        let mut r = rng();
        let b = BinaryHypervector::random(Dim::new(200), &mut r);
        let t = TernaryHypervector::from_binary(&b);
        assert_eq!(t.to_binary(), b);
        assert_eq!(t.count_nonzero(), 200);
    }

    #[test]
    fn bind_multiplies_componentwise() {
        let mut a = TernaryHypervector::zeros(Dim::new(4));
        let mut b = TernaryHypervector::zeros(Dim::new(4));
        a.set(0, 1);
        b.set(0, -1); // 1·-1 = -1
        a.set(1, -1);
        b.set(1, -1); // -1·-1 = 1
        a.set(2, 1);
        b.set(2, 0); // 1·0 = 0
        let c = a.bind(&b).unwrap();
        assert_eq!(c.get(0), -1);
        assert_eq!(c.get(1), 1);
        assert_eq!(c.get(2), 0);
        assert_eq!(c.get(3), 0);
    }

    #[test]
    fn dot_and_cosine_identities() {
        let mut r = rng();
        let a = TernaryHypervector::random_dense(Dim::new(1_000), &mut r);
        assert_eq!(a.dot(&a).unwrap(), 1_000);
        assert!((a.cosine(&a).unwrap() - 1.0).abs() < 1e-12);
        let b = TernaryHypervector::random_dense(Dim::new(1_000), &mut r);
        let cos = a.cosine(&b).unwrap();
        assert!(
            cos.abs() < 0.15,
            "random dense vectors should be near-orthogonal, cos = {cos}"
        );
        let zero = TernaryHypervector::zeros(Dim::new(1_000));
        assert_eq!(a.cosine(&zero).unwrap(), 0.0);
    }

    #[test]
    fn dot_dimension_mismatch_errors() {
        let a = TernaryHypervector::zeros(Dim::new(4));
        let b = TernaryHypervector::zeros(Dim::new(5));
        assert!(a.dot(&b).is_err());
        assert!(a.bind(&b).is_err());
    }

    #[test]
    fn bundle_sign_with_odd_inputs() {
        let mut r = rng();
        let inputs: Vec<_> = (0..5)
            .map(|_| TernaryHypervector::random_dense(Dim::new(2_000), &mut r))
            .collect();
        let bundled = bundle_ternary(&inputs, 0).unwrap();
        // Odd dense inputs: no ties, so result is dense.
        assert_eq!(bundled.count_nonzero(), 2_000);
        // Bundle is similar to members.
        for hv in &inputs {
            assert!(bundled.cosine(hv).unwrap() > 0.2);
        }
    }

    #[test]
    fn bundle_even_inputs_produce_zeros_at_ties() {
        let mut a = TernaryHypervector::zeros(Dim::new(2));
        let mut b = TernaryHypervector::zeros(Dim::new(2));
        a.set(0, 1);
        b.set(0, -1); // tie → 0
        a.set(1, 1);
        b.set(1, 1); // agreement → 1
        let out = bundle_ternary(&[a, b], 0).unwrap();
        assert_eq!(out.get(0), 0);
        assert_eq!(out.get(1), 1);
    }

    #[test]
    fn bundle_deadzone_suppresses_weak_majorities() {
        let mut r = rng();
        let inputs: Vec<_> = (0..9)
            .map(|_| TernaryHypervector::random_dense(Dim::new(4_096), &mut r))
            .collect();
        let tight = bundle_ternary(&inputs, 0).unwrap();
        let loose = bundle_ternary(&inputs, 3).unwrap();
        assert!(loose.count_nonzero() < tight.count_nonzero());
    }

    #[test]
    fn bundle_empty_errors() {
        assert!(bundle_ternary(&[], 0).is_err());
    }
}
