//! Streaming bridge from the HDC encode pipeline into incremental
//! estimators.
//!
//! [`EstimatorSink`] implements [`StreamSink`], so it plugs directly into
//! `hyperfex_hdc::stream::StreamEncoder` (or the core extractor's
//! `transform_stream`): encoded hypervectors accumulate into a small
//! packed mini-batch and every full batch is handed to
//! [`Estimator::partial_fit_features`] as [`Features::Packed`]. Peak state
//! is one mini-batch plus the model's own parameters — independent of
//! stream length, which is what lets unbounded cohorts train models that
//! could never hold the full design matrix.
//!
//! The sink is *order-dependent*: the trained model is exactly the one
//! `partial_fit` would produce on the same records in the same order with
//! the same batch boundaries. Callers must invoke
//! [`EstimatorSink::finish`] after the stream drains — a final partial
//! batch would otherwise be silently dropped (the `must_use` on the type
//! exists to make that bug loud).

use crate::error::MlError;
use crate::traits::{Estimator, Features};
use hyperfex_hdc::binary::BinaryHypervector;
use hyperfex_hdc::bitmatrix::BitMatrix;
use hyperfex_hdc::stream::{StreamSink, DEFAULT_MICRO_BATCH};
use hyperfex_hdc::HdcError;

/// A [`StreamSink`] that trains any [`Estimator`] supporting
/// `partial_fit` from a stream of encoded records.
#[must_use = "call finish() after the stream drains or the tail batch is lost"]
pub struct EstimatorSink<'a> {
    estimator: &'a mut dyn Estimator,
    batch: Vec<BinaryHypervector>,
    labels: Vec<usize>,
    capacity: usize,
    trained: usize,
    batches: usize,
}

impl std::fmt::Debug for EstimatorSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimatorSink")
            .field("estimator", &self.estimator.name())
            .field("buffered", &self.batch.len())
            .field("capacity", &self.capacity)
            .field("trained", &self.trained)
            .field("batches", &self.batches)
            .finish()
    }
}

impl<'a> EstimatorSink<'a> {
    /// Wraps an estimator with the default mini-batch size
    /// ([`DEFAULT_MICRO_BATCH`] records per `partial_fit` call).
    pub fn new(estimator: &'a mut dyn Estimator) -> Self {
        Self::with_capacity(estimator, DEFAULT_MICRO_BATCH)
    }

    /// Wraps an estimator flushing every `capacity` records (clamped to at
    /// least 1). Batch boundaries are part of the training trajectory for
    /// mini-batch learners, so fix this when reproducibility matters.
    pub fn with_capacity(estimator: &'a mut dyn Estimator, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            estimator,
            batch: Vec::with_capacity(capacity),
            labels: Vec::with_capacity(capacity),
            capacity,
            trained: 0,
            batches: 0,
        }
    }

    /// Records already handed to `partial_fit` (excludes the buffered
    /// tail).
    #[must_use]
    pub fn records_trained(&self) -> usize {
        self.trained
    }

    /// Number of `partial_fit` calls made so far.
    #[must_use]
    pub fn batches_flushed(&self) -> usize {
        self.batches
    }

    /// Trains on whatever is buffered and returns the total record count
    /// seen by the estimator. Must be called after the stream drains.
    pub fn finish(mut self) -> Result<usize, MlError> {
        self.flush()?;
        Ok(self.trained)
    }

    fn flush(&mut self) -> Result<(), MlError> {
        if self.batch.is_empty() {
            return Ok(());
        }
        let bits = BitMatrix::from_hypervectors(&self.batch).map_err(|e| {
            MlError::ShapeMismatch {
                expected: "uniform hypervector dimensionality".into(),
                got: e.to_string(),
            }
        })?;
        self.estimator
            .partial_fit_features(&Features::Packed(&bits), &self.labels)?;
        self.trained += self.batch.len();
        self.batches += 1;
        self.batch.clear();
        self.labels.clear();
        Ok(())
    }
}

impl StreamSink for EstimatorSink<'_> {
    /// Buffers the record; a full buffer flushes into `partial_fit`. A
    /// training failure aborts the stream, surfaced as
    /// [`HdcError::InvalidConfig`] carrying the [`MlError`] message (the
    /// stream layer cannot name ML error types without inverting the crate
    /// dependency).
    fn absorb(&mut self, _seq: usize, label: usize, hv: &BinaryHypervector) -> Result<(), HdcError> {
        self.batch.push(hv.clone());
        self.labels.push(label);
        if self.batch.len() >= self.capacity {
            self.flush()
                .map_err(|e| HdcError::InvalidConfig(format!("estimator sink flush failed: {e}")))?;
        }
        Ok(())
    }

    fn state_bytes(&self) -> usize {
        // One full mini-batch of packed hypervectors plus labels; the
        // estimator's own parameters are its business.
        let per_record = self
            .batch
            .first()
            .map_or(0, |hv| hv.words().len() * 8 + std::mem::size_of::<usize>());
        self.capacity * per_record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{SgdClassifier, SgdLoss, SgdParams};
    use hyperfex_hdc::binary::Dim;
    use hyperfex_hdc::rng::SplitMix64;

    fn cohort(n: usize, dim: usize, seed: u64) -> (Vec<BinaryHypervector>, Vec<usize>) {
        let d = Dim::try_new(dim).unwrap();
        let mut rng = SplitMix64::new(seed);
        let protos: Vec<BinaryHypervector> = (0..2)
            .map(|_| BinaryHypervector::random(d, &mut rng))
            .collect();
        let mut hvs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let mut hv = protos[label].clone();
            // Flip a few bits so records are near, not at, their prototype.
            for _ in 0..dim / 20 {
                let bit = (rng.next_u64() % dim as u64) as usize;
                hv.set(bit, !hv.get(bit));
            }
            hvs.push(hv);
            labels.push(label);
        }
        (hvs, labels)
    }

    fn log_params() -> SgdParams {
        SgdParams {
            loss: SgdLoss::Log,
            ..Default::default()
        }
    }

    #[test]
    fn sink_trains_exactly_like_direct_partial_fit() {
        let (hvs, labels) = cohort(100, 256, 7);
        // Direct path: partial_fit over the same batch boundaries.
        let mut direct = SgdClassifier::new(log_params());
        for (chunk, ls) in hvs.chunks(32).zip(labels.chunks(32)) {
            let bits = BitMatrix::from_hypervectors(chunk).unwrap();
            direct
                .partial_fit_features(&Features::Packed(&bits), ls)
                .unwrap();
        }
        // Sink path: absorb record-by-record with the same capacity.
        let mut streamed = SgdClassifier::new(log_params());
        let mut sink = EstimatorSink::with_capacity(&mut streamed, 32);
        for (i, (hv, &label)) in hvs.iter().zip(&labels).enumerate() {
            sink.absorb(i, label, hv).unwrap();
        }
        assert_eq!(sink.finish().unwrap(), 100);
        let all = BitMatrix::from_hypervectors(&hvs).unwrap();
        assert_eq!(
            direct.decision_function_packed(&all).unwrap(),
            streamed.decision_function_packed(&all).unwrap()
        );
    }

    #[test]
    fn finish_flushes_the_partial_tail() {
        let (hvs, labels) = cohort(10, 128, 3);
        let mut model = SgdClassifier::new(log_params());
        let mut sink = EstimatorSink::with_capacity(&mut model, 64);
        for (i, (hv, &label)) in hvs.iter().zip(&labels).enumerate() {
            sink.absorb(i, label, hv).unwrap();
        }
        assert_eq!(sink.batches_flushed(), 0);
        assert_eq!(sink.finish().unwrap(), 10);
        let all = BitMatrix::from_hypervectors(&hvs).unwrap();
        assert!(model.decision_function_packed(&all).is_ok());
    }

    #[test]
    fn sink_state_stays_bounded_by_capacity() {
        let (hvs, labels) = cohort(500, 256, 9);
        let mut model = SgdClassifier::new(log_params());
        let mut sink = EstimatorSink::with_capacity(&mut model, 16);
        let mut peak = 0usize;
        for (i, (hv, &label)) in hvs.iter().zip(&labels).enumerate() {
            sink.absorb(i, label, hv).unwrap();
            peak = peak.max(sink.state_bytes());
        }
        // 16 records × (256 bits = 4 words × 8 bytes + label word).
        assert_eq!(peak, 16 * (4 * 8 + std::mem::size_of::<usize>()));
        assert_eq!(sink.finish().unwrap(), 500);
    }

    #[test]
    fn estimators_without_partial_fit_abort_the_stream() {
        let (hvs, labels) = cohort(4, 64, 1);
        // Platt-less SVC has no partial_fit; the default trait impl errors.
        let mut model = crate::svm::SvcClassifier::new(crate::svm::SvcParams::default());
        let mut sink = EstimatorSink::with_capacity(&mut model, 2);
        let mut failed = false;
        for (i, (hv, &label)) in hvs.iter().zip(&labels).enumerate() {
            if sink.absorb(i, label, hv).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "flush into a partial_fit-less model must error");
    }
}
