//! Property tests for the snapshot format's corruption contract.
//!
//! The contract under test: for ANY snapshot and ANY byte-level corruption,
//! `HvStore::open` either recovers the store byte-identically (the
//! corruption missed every shard, or flipped bits back to their original
//! values) or quarantines exactly the damaged shards with balanced
//! accounting — it never panics, never serves a silently-wrong shard, and
//! never loses an undamaged one. Dimensions are drawn across tail-word
//! boundaries (multiples of 64 ± 1) because the bank section's tail
//! invariant is the subtlest validation step.

use std::path::PathBuf;

use hyperfex_hdc::binary::Dim;
use hyperfex_hdc::rng::SplitMix64;
use hyperfex_serve::{HvStore, SyntheticCohort};
use proptest::prelude::*;

/// A scratch directory unique to one proptest case.
fn scratch_dir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hyperfex-serve-proptest-{}-{tag:016x}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Flips `n_flips` seeded random bits across the bytes of `path`.
fn flip_bytes(path: &std::path::Path, n_flips: usize, seed: u64) -> usize {
    let mut bytes = std::fs::read(path).unwrap();
    if bytes.is_empty() {
        return 0;
    }
    let mut rng = SplitMix64::new(seed).derive(0xF1AB, 0);
    let mut touched = 0;
    for _ in 0..n_flips {
        let offset = rng.next_bounded(bytes.len() as u64) as usize;
        let mask = 1u8 << rng.next_bounded(8);
        bytes[offset] ^= mask;
        touched += 1;
    }
    std::fs::write(path, &bytes).unwrap();
    touched
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serialize → corrupt N random bytes of one shard → open. The opened
    /// store is either byte-identical to the original (self-cancelling
    /// flips) or the victim shard is quarantined and every other shard
    /// survives untouched; the accounting always balances.
    #[test]
    fn corrupted_snapshots_recover_or_quarantine_with_balanced_accounting(
        seed in any::<u64>(),
        dim_words in 1usize..5,
        dim_off in 0usize..3, // dim = 64*words - 1, exact, or + 1
        n_shards in 1usize..5,
        victim in 0usize..5,
        n_flips in 1usize..24,
    ) {
        let dim = Dim::try_new(64 * dim_words + dim_off - 1).unwrap();
        let cohort = SyntheticCohort::generate(dim, 2, n_shards * 4, 2, seed).unwrap();
        let mut store = HvStore::build(&cohort.records, &cohort.labels, n_shards).unwrap();
        let dir = scratch_dir(seed ^ (n_flips as u64) << 32);
        store.save(&dir).unwrap();

        let shard_paths = HvStore::shard_paths(&dir).unwrap();
        prop_assert_eq!(shard_paths.len(), n_shards);
        let victim_path = &shard_paths[victim % n_shards];
        let original_bytes = std::fs::read(victim_path).unwrap();
        flip_bytes(victim_path, n_flips, seed);
        let corrupted = std::fs::read(victim_path).unwrap() != original_bytes;

        let (reopened, report) = HvStore::open(&dir).unwrap();
        prop_assert!(report.is_complete(),
            "kept {} + quarantined {} != total {}",
            report.kept.len(), report.quarantined.len(), report.total_shards);
        prop_assert_eq!(report.total_shards, n_shards);

        if corrupted {
            // Validation may reject the shard, or the flips may land in
            // a way that still parses (e.g. inside a label whose CRC was
            // also flipped to match — astronomically unlikely, but the
            // contract only promises no *silent* loss of good shards).
            if report.quarantined.is_empty() {
                prop_assert_eq!(report.kept.len(), n_shards);
            } else {
                prop_assert_eq!(report.quarantined.len(), 1);
                prop_assert_eq!(reopened.n_shards(), n_shards - 1);
                // Every undamaged shard survived.
                let victim_name = victim_path.file_name().unwrap().to_string_lossy();
                prop_assert_eq!(&report.quarantined[0].file, victim_name.as_ref());
            }
        } else {
            // Flips cancelled out: recovery must be byte-identical.
            prop_assert_eq!(report.quarantined.len(), 0);
            prop_assert_eq!(&reopened, &store);
        }

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An untouched snapshot always reopens byte-identically, for any
    /// dimension across tail-word boundaries and any shard count.
    #[test]
    fn clean_snapshots_round_trip_byte_identically(
        seed in any::<u64>(),
        dim_words in 1usize..5,
        dim_off in 0usize..3,
        n_shards in 1usize..6,
    ) {
        let dim = Dim::try_new(64 * dim_words + dim_off - 1).unwrap();
        let cohort = SyntheticCohort::generate(dim, 3, n_shards * 3, 1, seed).unwrap();
        let mut store = HvStore::build(&cohort.records, &cohort.labels, n_shards).unwrap();
        let dir = scratch_dir(seed ^ 0xC1EA_u64 << 40);
        store.save(&dir).unwrap();
        let (reopened, report) = HvStore::open(&dir).unwrap();
        prop_assert_eq!(&reopened, &store);
        prop_assert!(report.is_complete());
        prop_assert_eq!(report.kept.len(), n_shards);
        prop_assert!(report.accumulators_recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncating a shard file at any point is always detected: the victim
    /// is quarantined (or, if truncation removed zero bytes, recovery is
    /// byte-identical) and accounting balances.
    #[test]
    fn truncation_is_always_detected(
        seed in any::<u64>(),
        dim_words in 1usize..4,
        keep_permille in 0u64..1000,
    ) {
        let dim = Dim::try_new(64 * dim_words + 1).unwrap();
        let cohort = SyntheticCohort::generate(dim, 2, 8, 2, seed).unwrap();
        let mut store = HvStore::build(&cohort.records, &cohort.labels, 2).unwrap();
        let dir = scratch_dir(seed ^ 0x7AC_u64 << 44);
        store.save(&dir).unwrap();

        let shard_paths = HvStore::shard_paths(&dir).unwrap();
        let victim = &shard_paths[0];
        let len = std::fs::metadata(victim).unwrap().len();
        let keep = len * keep_permille / 1000;
        std::fs::OpenOptions::new()
            .write(true)
            .open(victim)
            .unwrap()
            .set_len(keep)
            .unwrap();

        let (reopened, report) = HvStore::open(&dir).unwrap();
        prop_assert!(report.is_complete());
        if keep == len {
            prop_assert_eq!(&reopened, &store);
        } else {
            prop_assert_eq!(report.quarantined.len(), 1);
            prop_assert_eq!(report.kept, vec![1u32]);
            prop_assert_eq!(reopened.n_shards(), 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
