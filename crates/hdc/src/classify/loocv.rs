//! Leave-one-out cross-validation for Hamming-distance classification.
//!
//! The paper validates its pure-HDC model with leave-one-out (§II-C):
//! every patient hypervector is classified by the nearest *other* patient
//! hypervector, and the confusion counts are accumulated over all patients.
//! "Once the hypervectors are constructed there's no model that needs to be
//! built, we only need to measure distances" — so the whole validation is
//! one O(n²·d/64) distance sweep, which we parallelise over held-out rows
//! with rayon (embarrassingly parallel, deterministic regardless of thread
//! count).

use crate::binary::BinaryHypervector;
use crate::error::HdcError;
use crate::obs;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Buckets for the normalized nearest-neighbour distance distribution.
/// Distances are a pure function of the (seeded) hypervectors, so this
/// histogram is deterministic across runs — the determinism regression
/// test relies on exactly that.
const NN_DISTANCE_BOUNDS: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0];

/// Leave-one-out evaluation harness.
#[derive(Debug, Clone, Copy)]
pub struct LeaveOneOut {
    k: usize,
}

impl LeaveOneOut {
    /// The paper's configuration: 1-nearest-neighbour.
    #[must_use]
    pub fn new() -> Self {
        Self { k: 1 }
    }

    /// Uses `k` nearest neighbours with majority voting instead of 1.
    ///
    /// Returns [`HdcError::InvalidConfig`] if `k == 0`.
    pub fn with_k(k: usize) -> Result<Self, HdcError> {
        if k == 0 {
            return Err(HdcError::InvalidConfig(
                "LOOCV neighbour count k must be at least 1".to_string(),
            ));
        }
        Ok(Self { k })
    }

    /// Runs leave-one-out validation and returns per-row predictions plus
    /// aggregate outcome.
    pub fn run(
        &self,
        hypervectors: &[BinaryHypervector],
        labels: &[usize],
    ) -> Result<LoocvOutcome, HdcError> {
        let _span = obs::span("hdc/loocv_run");
        crate::failpoint::check("hdc/loocv_run")?;
        if hypervectors.len() < 2 {
            return Err(HdcError::EmptyInput);
        }
        if hypervectors.len() != labels.len() {
            return Err(HdcError::LabelLengthMismatch {
                samples: hypervectors.len(),
                labels: labels.len(),
            });
        }
        let dim = hypervectors[0].dim();
        if let Some(bad) = hypervectors.iter().find(|hv| hv.dim() != dim) {
            return Err(HdcError::DimensionMismatch {
                left: dim.get(),
                right: bad.dim().get(),
            });
        }
        let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
        let k = self.k;

        let predictions: Vec<usize> = (0..hypervectors.len())
            .into_par_iter()
            .map(|held_out| {
                // Bounded insertion sort of the k best (distance, index)
                // pairs — k is tiny, so this is cheaper than sorting all n.
                let query = &hypervectors[held_out];
                let mut best: Vec<(usize, usize)> = Vec::with_capacity(k + 1);
                for (j, hv) in hypervectors.iter().enumerate() {
                    if j == held_out {
                        continue;
                    }
                    // Dims are equal: `run` validated the whole stack
                    // against `dim` before this loop.
                    let d = crate::bitmatrix::hamming_words(query.words(), hv.words());
                    let pos = best.partition_point(|&(bd, bj)| (bd, bj) < (d, j));
                    if pos < k {
                        best.insert(pos, (d, j));
                        best.truncate(k);
                    }
                }
                if let Some(&(d, _)) = best.first() {
                    obs::observe(
                        "hdc/loocv_nn_distance",
                        NN_DISTANCE_BOUNDS,
                        d as f64 / dim.get() as f64,
                    );
                }
                let mut votes = vec![0u32; n_classes];
                for &(_, j) in &best {
                    votes[labels[j]] += 1;
                }
                votes
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                    .map_or(0, |(c, _)| c)
            })
            .collect();

        obs::counter_add("hdc/loocv_rows", predictions.len() as u64);
        Ok(LoocvOutcome::from_predictions(
            labels,
            &predictions,
            n_classes,
        ))
    }
}

impl Default for LeaveOneOut {
    fn default() -> Self {
        Self::new()
    }
}

/// The result of a leave-one-out run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoocvOutcome {
    /// Predicted class per row, aligned with the input order.
    pub predictions: Vec<usize>,
    /// Row-major confusion matrix: `confusion[actual][predicted]`.
    pub confusion: Vec<Vec<u32>>,
    /// Number of correct predictions.
    pub correct: usize,
    /// Total rows evaluated.
    pub total: usize,
}

impl LoocvOutcome {
    /// Builds an outcome from aligned actual/predicted label slices.
    #[must_use]
    pub fn from_predictions(actual: &[usize], predicted: &[usize], n_classes: usize) -> Self {
        let n_classes = n_classes
            .max(actual.iter().copied().max().map_or(0, |m| m + 1))
            .max(predicted.iter().copied().max().map_or(0, |m| m + 1));
        let mut confusion = vec![vec![0u32; n_classes]; n_classes];
        let mut correct = 0usize;
        for (&a, &p) in actual.iter().zip(predicted) {
            confusion[a][p] += 1;
            if a == p {
                correct += 1;
            }
        }
        Self {
            predictions: predicted.to_vec(),
            confusion,
            correct,
            total: actual.len(),
        }
    }

    /// Overall classification accuracy in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Binary confusion counts `(tp, tn, fp, fn)` treating class 1 as
    /// positive (the paper's convention: "true positive (both classes
    /// are 1) or true negative (both classes are 0)").
    ///
    /// Returns `None` if more than two classes are present.
    #[must_use]
    pub fn binary_counts(&self) -> Option<(u32, u32, u32, u32)> {
        if self.confusion.len() > 2 {
            return None;
        }
        let get = |a: usize, p: usize| -> u32 {
            self.confusion
                .get(a)
                .and_then(|row| row.get(p))
                .copied()
                .unwrap_or(0)
        };
        Some((get(1, 1), get(0, 0), get(0, 1), get(1, 0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::Dim;
    use crate::encoding::LinearEncoder;

    fn two_clusters(n_per_class: usize) -> (Vec<BinaryHypervector>, Vec<usize>) {
        let enc = LinearEncoder::new(Dim::new(4_096), 0.0, 100.0, 91).unwrap();
        let mut hvs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n_per_class {
            hvs.push(enc.encode(i as f64 * 2.0));
            labels.push(0);
            hvs.push(enc.encode(70.0 + i as f64 * 2.0));
            labels.push(1);
        }
        (hvs, labels)
    }

    #[test]
    fn separable_clusters_reach_perfect_loocv() {
        let (hvs, labels) = two_clusters(10);
        let outcome = LeaveOneOut::new().run(&hvs, &labels).unwrap();
        assert_eq!(outcome.accuracy(), 1.0);
        assert_eq!(outcome.total, 20);
        assert_eq!(outcome.correct, 20);
        let (tp, tn, fp, fn_) = outcome.binary_counts().unwrap();
        assert_eq!((tp, tn, fp, fn_), (10, 10, 0, 0));
    }

    #[test]
    fn predictions_align_with_rows() {
        let (hvs, labels) = two_clusters(5);
        let outcome = LeaveOneOut::new().run(&hvs, &labels).unwrap();
        assert_eq!(outcome.predictions.len(), hvs.len());
        assert_eq!(outcome.predictions, labels);
    }

    #[test]
    fn requires_at_least_two_rows() {
        let hv = BinaryHypervector::zeros(Dim::new(64));
        assert!(LeaveOneOut::new()
            .run(std::slice::from_ref(&hv), &[0])
            .is_err());
        assert!(LeaveOneOut::new().run(&[], &[]).is_err());
    }

    #[test]
    fn label_and_dim_validation() {
        let a = BinaryHypervector::zeros(Dim::new(64));
        let b = BinaryHypervector::ones(Dim::new(64));
        assert!(matches!(
            LeaveOneOut::new().run(&[a.clone(), b], &[0]),
            Err(HdcError::LabelLengthMismatch { .. })
        ));
        let c = BinaryHypervector::zeros(Dim::new(128));
        assert!(matches!(
            LeaveOneOut::new().run(&[a, c], &[0, 1]),
            Err(HdcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn k3_loocv_on_noisy_data_is_no_worse() {
        let (mut hvs, mut labels) = two_clusters(8);
        // Inject one mislabeled point deep inside cluster 0.
        let enc = LinearEncoder::new(Dim::new(4_096), 0.0, 100.0, 91).unwrap();
        hvs.push(enc.encode(5.0));
        labels.push(1);
        let acc1 = LeaveOneOut::new().run(&hvs, &labels).unwrap().accuracy();
        let acc3 = LeaveOneOut::with_k(3)
            .unwrap()
            .run(&hvs, &labels)
            .unwrap()
            .accuracy();
        assert!(acc3 >= acc1);
    }

    #[test]
    fn with_k_zero_is_a_typed_error() {
        assert!(matches!(
            LeaveOneOut::with_k(0),
            Err(HdcError::InvalidConfig(_))
        ));
        assert!(LeaveOneOut::with_k(1).is_ok());
    }

    #[test]
    fn confusion_matrix_sums_to_total() {
        let (hvs, labels) = two_clusters(6);
        let outcome = LeaveOneOut::new().run(&hvs, &labels).unwrap();
        let sum: u32 = outcome.confusion.iter().flatten().sum();
        assert_eq!(sum as usize, outcome.total);
    }

    #[test]
    fn multiclass_binary_counts_is_none() {
        let outcome = LoocvOutcome::from_predictions(&[0, 1, 2], &[0, 1, 2], 3);
        assert!(outcome.binary_counts().is_none());
        assert_eq!(outcome.accuracy(), 1.0);
    }

    #[test]
    fn empty_outcome_accuracy_is_zero() {
        let outcome = LoocvOutcome::from_predictions(&[], &[], 2);
        assert_eq!(outcome.accuracy(), 0.0);
    }
}
