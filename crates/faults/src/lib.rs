//! Deterministic seeded fault injection for the hyperfex pipeline.
//!
//! The paper's robustness claim — holographic representations degrade
//! gracefully under storage faults — is only a claim until the pipeline is
//! actually run against corrupted inputs. This crate supplies the
//! corruption, in three layers that mirror where real systems fail:
//!
//! - [`storage`]: bit-level faults on packed hypervectors — i.i.d. flips
//!   at a rate *p*, stuck-at words, burst errors, and deliberate tail-word
//!   corruption (behind `fault-injection`).
//! - [`table`]: data faults on loaded [`hyperfex_data::Table`]s — missing
//!   cells, out-of-range outliers, label noise, truncation, duplication,
//!   whole-feature dropout.
//! - [`registry`] (behind `fault-injection`): scheduled failpoint rules
//!   injected into the pipeline seams compiled into `hyperfex-hdc` and
//!   `hyperfex-data` (CSV loading, imputation, batch encoding, LOOCV).
//!
//! [`FaultPlan`] combines all three into a single seeded, replayable
//! value; every injector is deterministic given its seed, so any observed
//! failure reproduces bit-exactly from the plan that caused it.

pub mod plan;
// lint: gate-ok (the failpoint registry drives live handlers, which only
// exist in chaos builds; plans themselves stay buildable everywhere)
#[cfg(feature = "fault-injection")]
pub mod registry;
pub mod storage;
pub mod table;

pub use plan::{FaultPlan, PIPELINE_FAILPOINTS};

/// What a scheduled failpoint rule injects when it fires.
///
/// Mirrors the per-crate `FaultAction` enums in `hyperfex_hdc::failpoint`
/// and `hyperfex_data::failpoint`; the registry translates at install time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// The instrumented seam returns its crate's `Injected` error.
    Fail,
    /// The seam sleeps this many milliseconds, then proceeds.
    Delay(u64),
}

/// One scheduled failpoint rule: *at* `point`, *after* `after` hits, do
/// `action` for `times` hits (forever when `None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailRule {
    /// Failpoint name, e.g. `"hdc/encode_batch"` (see
    /// [`PIPELINE_FAILPOINTS`]).
    pub point: String,
    /// What to inject when the rule fires.
    pub action: FaultAction,
    /// Number of evaluations to let pass before firing (0 = immediately).
    pub after: usize,
    /// How many evaluations to fire for; `None` fires forever.
    pub times: Option<usize>,
}
