//! Cross-crate property tests: invariants that must hold for *any* table
//! the pipeline can encode, not just the two study datasets.

use hyperfex::prelude::*;
use hyperfex_hdc::bundle::try_weighted_majority;
use hyperfex_hdc::encoding::LinearEncoder;
use hyperfex_hdc::reference;
use hyperfex_hdc::rng::SplitMix64;
use hyperfex_hdc::similarity::normalized_hamming;
use hyperfex_hdc::BinaryHypervector;
use proptest::prelude::*;

/// Dimensionalities that stress the packed representation: single-word,
/// exact-word-boundary, tail-word and paper-scale cases.
const TAIL_DIMS: [usize; 9] = [1, 63, 64, 65, 101, 127, 128, 1_000, 10_000];

/// Strategy: a dimensionality drawn either from [`TAIL_DIMS`] or uniformly
/// from 2..512 (odd and non-multiple-of-64 values included).
fn dim_strategy() -> impl Strategy<Value = usize> {
    (0usize..TAIL_DIMS.len(), 2usize..512, any::<bool>()).prop_map(|(i, free, pick_fixed)| {
        if pick_fixed {
            TAIL_DIMS[i]
        } else {
            free
        }
    })
}

/// Strategy: a random mixed-schema table with 6–40 rows, 1–5 continuous +
/// 0–4 binary columns, and both classes present.
fn table_strategy() -> impl Strategy<Value = Table> {
    (2usize..6, 0usize..5, 6usize..40, any::<u64>())
        .prop_flat_map(|(n_cont, n_bin, n_rows, seed)| {
            let cont_values =
                prop::collection::vec(prop::collection::vec(-100.0f64..100.0, n_cont), n_rows);
            let bin_values = prop::collection::vec(prop::collection::vec(0usize..2, n_bin), n_rows);
            (cont_values, bin_values, Just((n_cont, n_bin, n_rows, seed)))
        })
        .prop_map(|(cont, bin, (n_cont, n_bin, n_rows, seed))| {
            let mut columns: Vec<ColumnSpec> = (0..n_cont)
                .map(|i| ColumnSpec::continuous(format!("c{i}")))
                .collect();
            columns.extend((0..n_bin).map(|i| ColumnSpec::binary(format!("b{i}"))));
            let rows: Vec<Vec<f64>> = cont
                .into_iter()
                .zip(bin)
                .map(|(c, b)| {
                    let mut row = c;
                    row.extend(b.into_iter().map(|v| v as f64));
                    row
                })
                .collect();
            // Deterministic labels with both classes guaranteed.
            let labels: Vec<usize> = (0..n_rows)
                .map(|i| usize::from((i as u64).wrapping_add(seed) % 3 == 0 || i == 0))
                .collect();
            let mut labels = labels;
            labels[n_rows - 1] = 0;
            labels[0] = 1;
            Table::new(columns, rows, labels).expect("constructed consistently")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every encodable table produces one balanced-ish hypervector per
    /// row, and encoding is deterministic.
    #[test]
    fn encoding_any_table_is_total_and_deterministic(table in table_strategy()) {
        let dim = Dim::new(256);
        let mut e1 = HdcFeatureExtractor::new(dim, 7);
        let mut e2 = HdcFeatureExtractor::new(dim, 7);
        let h1 = e1.fit_transform(&table).unwrap();
        let h2 = e2.fit_transform(&table).unwrap();
        prop_assert_eq!(&h1, &h2);
        prop_assert_eq!(h1.len(), table.n_rows());
        let arity = table.n_cols();
        for hv in &h1 {
            // Majority bundling of balanced codes: odd arity stays
            // near-balanced; even arity skews dense because the paper's
            // tie → 1 rule fires on every split vote (for two features
            // majority-with-tie-to-1 *is* bitwise OR, density ≈ 0.75).
            let density = hv.count_ones() as f64 / 256.0;
            if arity % 2 == 1 {
                prop_assert!((0.30..=0.70).contains(&density), "odd-arity density {}", density);
            } else {
                prop_assert!((0.40..=0.85).contains(&density), "even-arity density {}", density);
            }
        }
    }

    /// Identical rows encode identically; the encoding is a function of
    /// the row values.
    #[test]
    fn equal_rows_get_equal_codes(table in table_strategy()) {
        let mut ext = HdcFeatureExtractor::new(Dim::new(192), 3);
        let hvs = ext.fit_transform(&table).unwrap();
        for i in 0..table.n_rows() {
            for j in (i + 1)..table.n_rows() {
                if table.row(i) == table.row(j) {
                    prop_assert_eq!(&hvs[i], &hvs[j]);
                }
            }
        }
    }

    /// LOOCV accuracy is invariant to relabeling classes 0↔1 (symmetry of
    /// the distance rule).
    #[test]
    fn loocv_is_class_symmetric(table in table_strategy()) {
        let model = HammingModel::new(Dim::new(192), 5);
        let a = model.evaluate_loocv(&table).unwrap().accuracy();
        let flipped = Table::new(
            table.columns().to_vec(),
            table.rows().to_vec(),
            table.labels().iter().map(|&l| 1 - l).collect(),
        ).unwrap();
        let b = model.evaluate_loocv(&flipped).unwrap().accuracy();
        prop_assert!((a - b).abs() < 1e-12);
    }

    /// Hypervector feature matrices are always strictly 0/1 and the
    /// pairwise Hamming distances survive the matrix round trip.
    #[test]
    fn matrix_roundtrip_preserves_distances(table in table_strategy()) {
        let mut ext = HdcFeatureExtractor::new(Dim::new(128), 1);
        let hvs = ext.fit_transform(&table).unwrap();
        let m = HdcFeatureExtractor::to_matrix(&hvs).unwrap();
        prop_assert!(m.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
        for i in 0..hvs.len().min(4) {
            for j in (i + 1)..hvs.len().min(4) {
                let hamming = hvs[i].try_hamming(&hvs[j]).unwrap() as f32;
                let euclid_sq = hyperfex_ml::Matrix::squared_distance(m.row(i), m.row(j));
                // On 0/1 vectors, squared Euclidean distance = Hamming.
                prop_assert!((hamming - euclid_sq).abs() < 1e-3);
            }
        }
    }

    /// Normalized Hamming distance between any two encoded rows stays at
    /// or below ~0.5 + noise: record bundles of the same schema share the
    /// categorical codes, so they can never be anti-correlated.
    #[test]
    fn encoded_records_are_never_anticorrelated(table in table_strategy()) {
        let mut ext = HdcFeatureExtractor::new(Dim::new(256), 9);
        let hvs = ext.fit_transform(&table).unwrap();
        for i in 0..hvs.len().min(6) {
            for j in (i + 1)..hvs.len().min(6) {
                let d = normalized_hamming(&hvs[i], &hvs[j]).unwrap();
                prop_assert!(d < 0.75, "distance {} suggests anti-correlation", d);
            }
        }
    }

    /// The word-level rotation kernel agrees bit-for-bit with the scalar
    /// per-bit reference on every dimensionality, including rotations far
    /// larger than `d`.
    #[test]
    fn permute_kernel_matches_scalar_reference(
        d in dim_strategy(),
        k in 0usize..25_000,
        seed in any::<u64>(),
    ) {
        let dim = Dim::new(d);
        let hv = BinaryHypervector::random(dim, &mut SplitMix64::new(seed));
        prop_assert_eq!(hv.permute(k), reference::permute(&hv, k));
        // Inverse really inverts under the kernel too.
        prop_assert_eq!(hv.permute(k).permute_inverse(k), hv);
    }

    /// The checkpoint-mask level-encoding kernel agrees bit-for-bit with
    /// the flip-one-bit-at-a-time reference, including values outside the
    /// encoder's range (clamping path).
    #[test]
    fn linear_encode_kernel_matches_scalar_reference(
        d in dim_strategy(),
        t in -250.0f64..250.0,
        seed in any::<u64>(),
    ) {
        let enc = LinearEncoder::new(Dim::new(d), -100.0, 100.0, seed).unwrap();
        prop_assert_eq!(enc.encode(t), reference::linear_encode(&enc, t));
    }

    /// The bit-sliced bundling kernel agrees with the per-bit counting
    /// reference for arbitrary weights (including zero) on every
    /// dimensionality; error cases (all-zero weights) agree as well.
    #[test]
    fn bundle_kernel_matches_scalar_reference(
        d in dim_strategy(),
        seed in any::<u64>(),
        weights in prop::collection::vec(0u32..9, 1..8),
    ) {
        let dim = Dim::new(d);
        let mut r = SplitMix64::new(seed);
        let inputs: Vec<(BinaryHypervector, u32)> = weights
            .iter()
            .map(|&w| (BinaryHypervector::random(dim, &mut r), w))
            .collect();
        prop_assert_eq!(
            try_weighted_majority(&inputs),
            reference::weighted_majority(&inputs)
        );
    }

    /// Batch record encoding (chunked parallel, per-thread scratch) equals
    /// row-by-row sequential encoding on arbitrary tables.
    #[test]
    fn batch_encoding_matches_sequential_on_any_table(table in table_strategy()) {
        let mut ext = HdcFeatureExtractor::new(Dim::new(101), 17);
        let batch = ext.fit_transform(&table).unwrap();
        for (i, hv) in batch.iter().enumerate() {
            let single = ext.transform(&table, Some(&[i])).unwrap();
            prop_assert_eq!(hv, &single[0]);
        }
    }
}
