//! Item memory: a deterministic table of random symbol hypervectors.

use crate::binary::{BinaryHypervector, Dim};
use crate::rng::SplitMix64;

/// A lazily-materialised map from symbol index to a random hypervector.
///
/// Symbol codes are derived deterministically from `(seed, index)`, so two
/// item memories with the same seed agree without storing anything — lookups
/// can regenerate codes on demand — while [`ItemMemory::get`] memoises them
/// for hot reuse.
#[derive(Debug, Clone)]
pub struct ItemMemory {
    dim: Dim,
    root: SplitMix64,
    cache: Vec<Option<BinaryHypervector>>,
}

impl ItemMemory {
    /// Creates an item memory for up to `capacity` pre-allocated cache
    /// slots (lookups beyond the capacity still work, uncached).
    #[must_use]
    pub fn new(dim: Dim, seed: u64, capacity: usize) -> Self {
        Self {
            dim,
            root: SplitMix64::new(seed),
            cache: vec![None; capacity],
        }
    }

    /// The hypervector dimensionality.
    #[must_use]
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Returns (and caches) the code for `symbol`.
    pub fn get(&mut self, symbol: usize) -> BinaryHypervector {
        if let Some(Some(hv)) = self.cache.get(symbol) {
            return hv.clone();
        }
        let hv = self.generate(symbol);
        if let Some(slot) = self.cache.get_mut(symbol) {
            *slot = Some(hv.clone());
        }
        hv
    }

    /// Generates the code for `symbol` without touching the cache.
    #[must_use]
    pub fn generate(&self, symbol: usize) -> BinaryHypervector {
        let mut rng = self.root.derive(0xC0DE, symbol as u64);
        BinaryHypervector::random(self.dim, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_are_deterministic_and_cached() {
        let mut m = ItemMemory::new(Dim::new(1_024), 7, 4);
        let a1 = m.get(0);
        let a2 = m.get(0);
        assert_eq!(a1, a2);
        // Beyond-capacity lookups are regenerated consistently.
        let far1 = m.get(100);
        let far2 = m.get(100);
        assert_eq!(far1, far2);
    }

    #[test]
    fn distinct_symbols_are_quasi_orthogonal() {
        let mut m = ItemMemory::new(Dim::PAPER, 11, 8);
        let a = m.get(1);
        let b = m.get(2);
        let d = a.try_hamming(&b).unwrap();
        assert!((4_700..=5_300).contains(&d), "distance {d}");
    }

    #[test]
    fn two_memories_with_same_seed_agree() {
        let mut m1 = ItemMemory::new(Dim::new(256), 3, 0);
        let m2 = ItemMemory::new(Dim::new(256), 3, 0);
        assert_eq!(m1.get(5), m2.generate(5));
    }
}
