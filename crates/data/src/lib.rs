//! # hyperfex-data
//!
//! Dataset substrate for the `hyperfex` workspace:
//!
//! * [`Table`] — a typed tabular dataset (continuous / binary columns,
//!   `NaN` = missing) with aligned binary labels.
//! * [`impute`] — the paper's two missing-data treatments: drop incomplete
//!   rows (**Pima R**) and per-class median imputation (**Pima M**, after
//!   Artem's Kaggle notebook \[38\]).
//! * [`split`] — seeded stratified train/validation/test splits, stratified
//!   k-fold, and leave-one-out index generation.
//! * [`pima`] / [`sylhet`] — calibrated synthetic generators standing in
//!   for the real (non-redistributable) datasets, including a literal
//!   implementation of Smith et al.'s Diabetes Pedigree Function over a
//!   simulated family pedigree. `from_csv` loaders accept the real files
//!   when available (see DESIGN.md §4 for the substitution argument).
//! * [`stats`] — per-class feature summaries (regenerates the paper's
//!   Table I).
//! * [`csv`] — a dependency-free CSV reader/writer for the two dataset
//!   layouts.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod error;
pub mod failpoint;
pub mod impute;
pub mod obs;
pub mod pima;
pub mod split;
pub mod stats;
pub mod sylhet;
pub mod table;

pub use error::DataError;
pub use table::{ColumnKind, ColumnSpec, Table};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::error::DataError;
    pub use crate::impute::{drop_missing, impute_class_median};
    pub use crate::pima::{self, PimaConfig};
    pub use crate::split::{stratified_k_fold, stratified_split, SplitFractions, TrainTestSplit};
    pub use crate::stats::{class_summary, ClassSummary, FeatureSummary};
    pub use crate::sylhet::{self, SylhetConfig};
    pub use crate::table::{ColumnKind, ColumnSpec, Table};
}
