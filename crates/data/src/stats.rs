//! Per-class feature summaries — the machinery behind the paper's Table I.

use crate::table::Table;
use serde::{Deserialize, Serialize};

/// Mean and range of one feature within one class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSummary {
    /// Feature name.
    pub name: String,
    /// Mean over non-missing values.
    pub mean: f64,
    /// Minimum non-missing value.
    pub min: f64,
    /// Maximum non-missing value.
    pub max: f64,
    /// Number of non-missing observations.
    pub n: usize,
}

/// Per-class summaries for every feature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSummary {
    /// Summaries for the positive class (label 1), in column order.
    pub positive: Vec<FeatureSummary>,
    /// Summaries for the negative class (label 0), in column order.
    pub negative: Vec<FeatureSummary>,
}

/// Computes per-class mean and range for each feature, skipping missing
/// values (mirroring how Table I was computed on the curated dataset).
#[must_use]
pub fn class_summary(table: &Table) -> ClassSummary {
    let summarise = |class: usize| -> Vec<FeatureSummary> {
        (0..table.n_cols())
            .map(|col| {
                let mut sum = 0.0f64;
                let mut n = 0usize;
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for (row, &label) in table.rows().iter().zip(table.labels()) {
                    let v = row[col];
                    if label != class || v.is_nan() {
                        continue;
                    }
                    sum += v;
                    n += 1;
                    min = min.min(v);
                    max = max.max(v);
                }
                FeatureSummary {
                    name: table.columns()[col].name.clone(),
                    mean: if n > 0 { sum / n as f64 } else { f64::NAN },
                    min: if n > 0 { min } else { f64::NAN },
                    max: if n > 0 { max } else { f64::NAN },
                    n,
                }
            })
            .collect()
    };
    ClassSummary {
        positive: summarise(1),
        negative: summarise(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColumnSpec;

    #[test]
    fn summary_matches_hand_computation() {
        let t = Table::new(
            vec![ColumnSpec::continuous("age")],
            vec![vec![20.0], vec![40.0], vec![30.0], vec![f64::NAN]],
            vec![0, 0, 1, 1],
        )
        .unwrap();
        let s = class_summary(&t);
        assert_eq!(s.negative[0].mean, 30.0);
        assert_eq!(s.negative[0].min, 20.0);
        assert_eq!(s.negative[0].max, 40.0);
        assert_eq!(s.negative[0].n, 2);
        assert_eq!(s.positive[0].mean, 30.0);
        assert_eq!(s.positive[0].n, 1);
    }

    #[test]
    fn empty_class_yields_nan() {
        let t = Table::new(vec![ColumnSpec::continuous("x")], vec![vec![1.0]], vec![0]).unwrap();
        let s = class_summary(&t);
        assert!(s.positive[0].mean.is_nan());
        assert_eq!(s.positive[0].n, 0);
    }
}
