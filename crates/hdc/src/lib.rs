//! # hyperfex-hdc
//!
//! Hyperdimensional computing (HDC) substrate for the `hyperfex` workspace.
//!
//! This crate implements the computational model described by Kanerva
//! ("Hyperdimensional computing: an introduction to computing in distributed
//! representation with high-dimensional random vectors", Cognitive Computation
//! 2009) as used by Watkinson et al. (IPDPSW 2023) to extract features for
//! type 2 diabetes detection:
//!
//! * [`BinaryHypervector`] — dense, bit-packed binary hypervectors (default
//!   dimensionality 10,000) with XOR binding, rotation permutation and
//!   Hamming distance computed via word-level popcount.
//! * [`bundle`] — per-bit majority-vote bundling with the paper's tie → 1
//!   rule, plus streaming [`bundle::Bundler`] accumulators.
//! * [`encoding`] — the paper's linear (level) encoder for continuous
//!   features, the categorical encoder for binary features, and the record
//!   encoder that bundles one hypervector per patient.
//! * [`classify`] — Hamming 1-NN / k-NN, nearest-centroid (class prototype)
//!   classifiers with optional perceptron-style retraining, online
//!   mistake-driven trainers (perceptron / passive-aggressive / LVQ) with
//!   streaming `partial_fit`, and a leave-one-out cross-validation harness
//!   parallelised with rayon.
//! * [`distill`] — dimension distillation: rank bit positions by class
//!   discrimination and gather the top-k columns into a dense pruned space
//!   for low-latency serving.
//! * [`ternary`] and [`bipolar`] — the alternative hypervector backends the
//!   paper mentions (§II: "ternary ... and integer hypervectors could also
//!   be used").
//!
//! ## Quick example
//!
//! ```
//! use hyperfex_hdc::prelude::*;
//!
//! // Encode a continuous feature (e.g. plasma glucose 56..=198 mg/dl).
//! let enc = LinearEncoder::new(Dim::new(10_000), 56.0, 198.0, 42)?;
//! let low = enc.encode(60.0);
//! let high = enc.encode(195.0);
//! let mid = enc.encode(128.0);
//!
//! // Level encoding preserves order: closer values are closer in Hamming space.
//! assert!(low.try_hamming(&mid)? < low.try_hamming(&high)?);
//!
//! // Bundle several feature hypervectors into one record hypervector.
//! let record = bundle::try_majority(&[low.clone(), mid.clone(), high.clone()])?;
//! assert!(record.try_hamming(&mid)? <= record.try_hamming(&high)?);
//! # Ok::<(), hyperfex_hdc::HdcError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binary;
pub mod bipolar;
pub mod bitmatrix;
pub mod bundle;
pub mod classify;
pub mod distill;
pub mod encoding;
pub mod error;
pub mod failpoint;
pub mod obs;
pub mod reference;
pub mod rng;
pub mod sdm;
pub mod similarity;
pub mod stream;
pub mod ternary;

pub use binary::{BinaryHypervector, Dim};
pub use bipolar::BipolarHypervector;
pub use bitmatrix::BitMatrix;
pub use distill::BitSelection;
pub use error::HdcError;
pub use sdm::SparseDistributedMemory;
pub use ternary::TernaryHypervector;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::binary::{BinaryHypervector, Dim};
    pub use crate::bipolar::BipolarHypervector;
    pub use crate::bitmatrix::BitMatrix;
    pub use crate::bundle;
    pub use crate::classify::{
        fit_pocketed, CentroidClassifier, HammingKnnClassifier, LeaveOneOut, LoocvOutcome,
        LvqTrainer, OnlineTrainer, PassiveAggressiveTrainer, PerceptronTrainer,
    };
    pub use crate::distill::{discrimination_scores, permutation_scores, BitSelection};
    pub use crate::encoding::{
        CategoricalEncoder, FeatureEncoder, LenientBatch, LinearEncoder, PrunedLinearEncoder,
        QuarantineEntry, QuarantineReport, RecordEncoder, RecordSchema, RecordScratch,
    };
    pub use crate::error::HdcError;
    pub use crate::rng::SplitMix64;
    pub use crate::sdm::SparseDistributedMemory;
    pub use crate::similarity::{cosine_from_hamming, normalized_hamming};
    pub use crate::stream::{
        BundlerSink, ClassAccumulatorSink, CollectSink, FnStream, RecordStream, RowStream,
        StreamEncoder, StreamOutcome, StreamSink, TrainerSink,
    };
    pub use crate::ternary::TernaryHypervector;
}

/// The dimensionality used throughout the paper (10,000 bits).
pub const PAPER_DIM: usize = 10_000;
