//! Mini Table III: compare every paper model on raw features vs
//! hypervector features with k-fold cross-validation, on one dataset.
//!
//! ```sh
//! cargo run --release -p hyperfex --example compare_models
//! ```

use hyperfex::experiments::{hv_features, raw_features, Datasets};
use hyperfex::models::{make_model, ModelBudget, PAPER_MODELS};
use hyperfex::prelude::*;
use hyperfex_eval::cv::cross_validate;

fn main() -> Result<(), HyperfexError> {
    let datasets = Datasets::generate(42)?;
    let table = &datasets.pima_r;
    let dim = Dim::new(2_000);
    let folds = 5;
    let budget = ModelBudget {
        ensemble_scale: 0.3,
        nn_max_epochs: 100,
    };

    let features = raw_features(table)?;
    let hv = hv_features(table, dim, 42)?;

    println!(
        "{:<20} {:>14} {:>14} {:>8}",
        "model", "features acc", "hypervec acc", "delta"
    );
    println!("{}", "-".repeat(60));
    for kind in PAPER_MODELS {
        let feat = cross_validate(table, &features, folds, 42, &|| {
            make_model(kind, 42, &budget)
        })?;
        let hvcv = cross_validate(table, &hv, folds, 42, &|| make_model(kind, 42, &budget))?;
        let delta = (hvcv.test_accuracy - feat.test_accuracy) * 100.0;
        println!(
            "{:<20} {:>13.1}% {:>13.1}% {:>+7.1}pp",
            kind.label(),
            feat.test_accuracy * 100.0,
            hvcv.test_accuracy * 100.0,
            delta
        );
    }
    println!(
        "\n(the paper's headline: hypervectors rescue scale-sensitive models like SGD\n\
         while leaving strong tree ensembles roughly unchanged)"
    );
    Ok(())
}
