//! Violation records and reporting.

use std::fmt;
use std::path::{Path, PathBuf};

/// Which lint produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unwrap()`/`expect(`/`panic!`/`todo!`/`unimplemented!` in library code.
    Panic,
    /// Slice indexing in a word-level kernel without an `index-ok` annotation.
    KernelIndex,
    /// A packed-word mutation path without re-mask, exit assert or `tail-ok`.
    TailInvariant,
    /// A registry dependency or a path dependency outside vendor//crates/.
    Vendor,
    /// The allowlist itself is invalid (stale entry, budget exceeded, …).
    Allowlist,
    /// A closure passed to `scope`/`join`/`spawn`/`par_*` mutates a capture
    /// from outside the parallel region without a lock or atomic.
    ConcurrencyCapture,
    /// `Ordering::Relaxed` in library code without a `relaxed-ok` reason.
    RelaxedOrdering,
    /// A numeric `as` cast in a kernel/trainer hot path that is not
    /// provably widening and carries no `cast-ok` reason.
    CastSafety,
    /// A cfg-gated pub item without a matching counterpart in the other
    /// build, a shim signature mismatch, or a failpoint seam armed at the
    /// wrong number of sites.
    FeatureGate,
    /// `let _ = <fallible call>` silently discarding a `Result` in library
    /// code without propagation or a `discard-ok` reason.
    Discard,
}

impl Rule {
    /// Short tag used in diagnostics.
    pub fn tag(self) -> &'static str {
        match self {
            Self::Panic => "panic",
            Self::KernelIndex => "kernel-index",
            Self::TailInvariant => "tail-invariant",
            Self::Vendor => "vendor",
            Self::Allowlist => "allowlist",
            Self::ConcurrencyCapture => "concurrency-capture",
            Self::RelaxedOrdering => "relaxed-ordering",
            Self::CastSafety => "cast-safety",
            Self::FeatureGate => "feature-gate",
            Self::Discard => "discard",
        }
    }
}

/// One lint finding, anchored to a file and 1-based line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
    /// Raw text of the offending line (used for allowlist matching).
    pub line_text: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.tag(),
            self.message
        )
    }
}

/// Normalises a path under `root` to a forward-slash relative string.
pub fn rel(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
