//! The paper's NN timing observation (§III-A): "the performance of the
//! Sequential Neural Network was similar (10 msec per epoch) using the
//! original feature values or the hypervectors as input."
//!
//! We fit for a fixed small number of epochs on both representations and
//! report per-fit cost; divide by the epoch count for the per-epoch
//! figure.

use criterion::{criterion_group, criterion_main, Criterion};
use hyperfex::experiments::{hv_features, raw_features, Datasets};
use hyperfex_hdc::binary::Dim;
use hyperfex_ml::nn::{SequentialNn, SequentialNnParams};
use hyperfex_ml::Estimator;
use std::hint::black_box;

const EPOCHS: usize = 3;

fn params() -> SequentialNnParams {
    SequentialNnParams {
        max_epochs: EPOCHS,
        patience: EPOCHS + 1,
        seed: 42,
        ..SequentialNnParams::default()
    }
}

fn bench_nn(c: &mut Criterion) {
    let datasets = Datasets::generate(42).unwrap();
    let table = &datasets.pima_r;
    let features = raw_features(table).unwrap();
    let hv = hv_features(table, Dim::new(2_000), 42).unwrap();
    let labels = table.labels().to_vec();

    let mut g = c.benchmark_group(format!("nn_{EPOCHS}_epochs_pima_r"));
    g.sample_size(10);
    g.bench_function("features_8", |b| {
        b.iter(|| {
            let mut nn = SequentialNn::new(params());
            nn.fit(black_box(&features), black_box(&labels)).unwrap();
            black_box(nn.epochs_run())
        });
    });
    g.bench_function("hypervectors_2000", |b| {
        b.iter(|| {
            let mut nn = SequentialNn::new(params());
            nn.fit(black_box(&hv), black_box(&labels)).unwrap();
            black_box(nn.epochs_run())
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_nn
}
criterion_main!(benches);
