//! Reproduction-shape tests: the paper's *qualitative* findings must hold
//! on the synthetic datasets at reduced scale. These are the claims
//! EXPERIMENTS.md tracks quantitatively; here they gate CI.

use hyperfex::experiments::{hv_features, raw_features, Datasets};
use hyperfex::models::{make_model, ModelBudget, ModelKind};
use hyperfex::prelude::*;
use hyperfex_eval::cv::cross_validate;

fn datasets() -> Datasets {
    Datasets::generate(42).unwrap()
}

fn budget() -> ModelBudget {
    ModelBudget {
        ensemble_scale: 0.2,
        nn_max_epochs: 60,
    }
}

const DIM: usize = 1_000;

/// Shape 1 (Table II / V): every model scores far higher on Sylhet than on
/// Pima — the datasets' difficulty regimes differ by ~15-25 pp.
#[test]
fn sylhet_is_much_easier_than_pima() {
    let d = datasets();
    let pima = HammingModel::new(Dim::new(DIM), 42)
        .evaluate_loocv(&d.pima_r)
        .unwrap()
        .accuracy();
    let sylhet = HammingModel::new(Dim::new(DIM), 42)
        .evaluate_loocv(&d.sylhet)
        .unwrap()
        .accuracy();
    assert!(
        sylhet - pima > 0.08,
        "Sylhet ({sylhet:.3}) should beat Pima R ({pima:.3}) by a wide margin"
    );
    // Absolute regimes: paper reports 70.7% and 95.9%.
    assert!(
        (0.60..=0.88).contains(&pima),
        "Pima R Hamming accuracy {pima:.3}"
    );
    assert!(sylhet > 0.85, "Sylhet Hamming accuracy {sylhet:.3}");
}

/// Shape 2 (Table III): hypervectors rescue SGD — the paper's +10 pp
/// headline — because the 0/1 hypervector features are homogeneous where
/// the raw clinical features are wildly mis-scaled.
#[test]
fn hypervectors_rescue_sgd() {
    let d = datasets();
    let table = &d.pima_r;
    let features = raw_features(table).unwrap();
    let hv = hv_features(table, Dim::new(DIM), 42).unwrap();
    let feat = cross_validate(table, &features, 5, 42, &|| {
        make_model(ModelKind::Sgd, 42, &budget())
    })
    .unwrap();
    let hvcv = cross_validate(table, &hv, 5, 42, &|| {
        make_model(ModelKind::Sgd, 42, &budget())
    })
    .unwrap();
    assert!(
        hvcv.test_accuracy - feat.test_accuracy > 0.03,
        "SGD should gain clearly from hypervectors: features {:.3} vs hv {:.3}",
        feat.test_accuracy,
        hvcv.test_accuracy
    );
}

/// Shape 3 (Tables IV/V): Random Forest on hypervectors is among the
/// strongest models — never collapsing below its raw-features self by more
/// than noise.
#[test]
fn random_forest_stays_strong_on_hypervectors() {
    let d = datasets();
    let table = &d.sylhet;
    let features = raw_features(table).unwrap();
    let hv = hv_features(table, Dim::new(DIM), 42).unwrap();
    let feat = cross_validate(table, &features, 5, 42, &|| {
        make_model(ModelKind::RandomForest, 42, &budget())
    })
    .unwrap();
    let hvcv = cross_validate(table, &hv, 5, 42, &|| {
        make_model(ModelKind::RandomForest, 42, &budget())
    })
    .unwrap();
    assert!(
        hvcv.test_accuracy > 0.85,
        "RF+HV accuracy {:.3}",
        hvcv.test_accuracy
    );
    assert!(
        hvcv.test_accuracy > feat.test_accuracy - 0.05,
        "RF must not collapse on hypervectors: features {:.3} vs hv {:.3}",
        feat.test_accuracy,
        hvcv.test_accuracy
    );
}

/// Shape 4 (§II): accuracy saturates with dimensionality — 2k bits already
/// performs within noise of 4k on these datasets, while cost keeps
/// growing.
#[test]
fn dimensionality_saturates() {
    let d = datasets();
    let accuracy_at = |bits: usize| {
        HammingModel::new(Dim::new(bits), 42)
            .evaluate_loocv(&d.sylhet)
            .unwrap()
            .accuracy()
    };
    let tiny = accuracy_at(64);
    let mid = accuracy_at(1_000);
    let big = accuracy_at(4_000);
    assert!(
        mid >= tiny - 0.02,
        "going from 64 to 1000 bits must not hurt: {tiny:.3} → {mid:.3}"
    );
    assert!(
        (big - mid).abs() < 0.05,
        "1k → 4k bits should be within noise: {mid:.3} vs {big:.3}"
    );
}

/// Shape 5 (Table II): the hybrid NN on hypervectors beats the pure
/// Hamming model on Pima (79.6% vs 70.7% in the paper).
#[test]
fn hybrid_nn_beats_pure_hamming_on_pima() {
    let d = datasets();
    let table = &d.pima_m;
    let hamming = HammingModel::new(Dim::new(DIM), 42)
        .evaluate_loocv(table)
        .unwrap()
        .accuracy();
    // NN on hypervectors, one 70/15/15 split (kept single-repeat for test
    // speed; the experiment binary averages repeats).
    let split = stratified_split(table, SplitFractions::PAPER, 42).unwrap();
    let mut hybrid = HybridClassifier::new(
        Dim::new(DIM),
        42,
        make_model(
            ModelKind::SequentialNn,
            42,
            &ModelBudget {
                ensemble_scale: 1.0,
                nn_max_epochs: 150,
            },
        ),
    );
    hybrid.fit(table, &split.train).unwrap();
    let nn_acc = hybrid.accuracy(table, &split.test).unwrap();
    assert!(
        nn_acc > hamming - 0.05,
        "hybrid NN ({nn_acc:.3}) should not fall behind pure Hamming ({hamming:.3})"
    );
}

/// Shape 7 (robustness): the HDC fault-tolerance claim holds as a curve
/// shape. Flip rate 0 reproduces the uninjected LOOCV confusion counts
/// bit-exactly; small rates cost at most a little accuracy; coin-flip
/// storage (p = 0.5) is near chance rather than pathological — the decay
/// is smooth, not a cliff. `cargo run --bin robustness` regenerates the
/// full curve in `reports/robustness.{txt,json}`.
#[test]
fn accuracy_degrades_smoothly_under_bit_flips() {
    use hyperfex_faults::storage::degrade_store;
    use hyperfex_hdc::classify::LeaveOneOut;

    let d = datasets();
    let table = &d.sylhet;
    let mut extractor = HdcFeatureExtractor::new(Dim::new(DIM), 42);
    let hvs = extractor.fit_transform(table).unwrap();
    let clean = LeaveOneOut::new().run(&hvs, table.labels()).unwrap();

    let degraded_at = |rate: f64| {
        let mut store = hvs.clone();
        degrade_store(&mut store, rate, 0xF11A).unwrap();
        LeaveOneOut::new().run(&store, table.labels()).unwrap()
    };

    // p = 0 is bit-exact: same predictions, same confusion counts.
    let zero = degraded_at(0.0);
    assert_eq!(zero.predictions, clean.predictions);
    assert_eq!(zero.binary_counts(), clean.binary_counts());

    // Small corruption costs at most a little accuracy.
    let low = degraded_at(0.05).accuracy();
    assert!(
        low >= clean.accuracy() - 0.08,
        "p=0.05 should barely dent accuracy: clean {:.3} vs {low:.3}",
        clean.accuracy()
    );

    // Coin-flip storage is near the chance floor (the class prior puts
    // 1-NN chance around 0.53 on Sylhet), far below the clean accuracy.
    let coin = degraded_at(0.5).accuracy();
    assert!(
        (0.35..=0.68).contains(&coin),
        "p=0.5 should land near chance, got {coin:.3}"
    );

    // Smooth decay: the intermediate rate sits between its neighbours,
    // within noise.
    let mid = degraded_at(0.3).accuracy();
    assert!(
        mid <= low + 0.05 && mid >= coin - 0.05,
        "decay must be monotone-ish: p=0.05 {low:.3}, p=0.3 {mid:.3}, p=0.5 {coin:.3}"
    );
}

/// Shape 6 (Table I): the synthetic Pima R preserves the published
/// positive/negative mean ordering on every feature.
#[test]
fn pima_class_means_keep_their_published_ordering() {
    let d = datasets();
    let summary = class_summary(&d.pima_r);
    for (pos, neg) in summary.positive.iter().zip(&summary.negative) {
        assert!(
            pos.mean > neg.mean,
            "{}: positive mean {:.2} should exceed negative {:.2} (as in Table I)",
            pos.name,
            pos.mean,
            neg.mean
        );
    }
}
