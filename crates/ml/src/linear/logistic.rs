//! Binary logistic regression with L2 regularisation.
//!
//! scikit-learn's default solver (lbfgs) converges on unscaled clinical
//! features; our full-batch gradient descent achieves the same robustness
//! by standardising features internally (an exact reparameterisation of the
//! decision function, with the L2 penalty applied to the scaled
//! coefficients — numerically close to sklearn on these datasets, see
//! DESIGN.md §5).

use crate::error::MlError;
use crate::linalg::Matrix;
use crate::linear::{log_loss, sigmoid};
use crate::preprocessing::StandardScaler;
use crate::traits::{
    validate_fit_inputs, validate_packed_fit_inputs, Estimator, Features, ProbabilisticEstimator,
};
use hyperfex_hdc::bitmatrix::{masked_weight_sum, BitMatrix};
use serde::{Deserialize, Serialize};

/// Hyper-parameters (defaults mirror sklearn: `C = 1.0`, `max_iter` capped).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegressionParams {
    /// Inverse regularisation strength (sklearn default 1.0).
    pub c: f64,
    /// Maximum gradient-descent iterations.
    pub max_iter: usize,
    /// Stop when the gradient norm falls below this.
    pub tol: f64,
}

impl Default for LogisticRegressionParams {
    fn default() -> Self {
        Self {
            c: 1.0,
            max_iter: 300,
            tol: 1e-5,
        }
    }
}

/// A fitted binary logistic-regression model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    params: LogisticRegressionParams,
    scaler: StandardScaler,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LogisticRegression {
    /// Creates an unfitted model.
    #[must_use]
    pub fn new(params: LogisticRegressionParams) -> Self {
        Self {
            params,
            scaler: StandardScaler::new(),
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }

    /// Mean training log-loss of the current weights (useful in tests and
    /// convergence diagnostics).
    pub fn mean_log_loss(&self, x: &Matrix, y: &[usize]) -> Result<f64, MlError> {
        let p = self.predict_proba(x)?;
        Ok(p.iter()
            .zip(y)
            .map(|(&pi, &yi)| log_loss(pi, yi))
            .sum::<f64>()
            / y.len().max(1) as f64)
    }

    fn decision(&self, row: &[f32]) -> f64 {
        let mut z = self.bias;
        for (&w, &v) in self.weights.iter().zip(row) {
            z += w * f64::from(v);
        }
        z
    }

    /// Packed-input fit. Runs the same Nesterov gradient descent as
    /// [`Estimator::fit`] but never materialises the standardised matrix:
    /// a scaled 0/1 feature takes one of two per-column values, so the
    /// look-ahead logit collapses to
    /// `z = base − Σⱼ rⱼ·mⱼ + Σ_{set bits} rⱼ` with `rⱼ = (wⱼ + μ·vwⱼ)/σⱼ`
    /// hoisted once per iteration (the dense loop recomputes it per row),
    /// and the weight gradient `Σᵢ errᵢ·bᵢⱼ` to one gather over each
    /// feature's column of a one-time transpose (the bits never change
    /// across iterations). The reformulated sums round differently from the dense
    /// ones, so parity with the dense fit is close (≤1e-5 on logits)
    /// rather than bit-exact; the scaler statistics themselves are
    /// bit-identical.
    fn fit_packed(&mut self, bits: &BitMatrix, y: &[usize]) -> Result<(), MlError> {
        let n_classes = validate_packed_fit_inputs(bits, y)?;
        if n_classes > 2 {
            return Err(MlError::InvalidParameter {
                name: "y",
                reason: "logistic regression supports binary labels only".into(),
            });
        }
        if self.params.c <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "c",
                reason: "must be positive".into(),
            });
        }
        self.scaler.fit_packed(bits)?;
        let n = bits.n_rows();
        let p = bits.dim().get();
        let lambda = 1.0 / (self.params.c * n as f64);
        self.weights = vec![0.0; p];
        self.bias = 0.0;

        let lr = 1.0 / (p as f64 / 4.0 + lambda);
        let momentum = 0.9;
        let mut vel_w = vec![0.0f64; p];
        let mut vel_b = 0.0f64;

        let means = self.scaler.means().to_vec();
        let inv_s: Vec<f64> = self.scaler.stds().iter().map(|&s| 1.0 / s).collect();

        // The bits never change across iterations, so the gradient
        // Σᵢ errᵢ·bᵢⱼ can run column-major over a one-time transpose with
        // the gather kernel instead of a per-row scatter — one
        // masked_weight_sum over an n-bit column per feature.
        let cols = bits.transpose().map_err(|_| MlError::EmptyTrainingSet)?;

        // Look-ahead weights in original bit coordinates, refreshed once
        // per iteration.
        let mut r = vec![0.0f64; p];
        let mut err = vec![0.0f64; n];
        for _ in 0..self.params.max_iter {
            let mut offset = 0.0f64;
            for (((rj, &w), &vw), (&m, &is)) in r
                .iter_mut()
                .zip(&self.weights)
                .zip(&vel_w)
                .zip(means.iter().zip(&inv_s))
            {
                *rj = (w + momentum * vw) * is;
                offset += *rj * m;
            }
            let base = self.bias + momentum * vel_b - offset;

            let mut err_sum = 0.0f64;
            for ((e, &yi), i) in err.iter_mut().zip(y).zip(0..n) {
                let z = base + masked_weight_sum(bits.row_words(i), &r);
                *e = sigmoid(z) - yi as f64;
                err_sum += *e;
            }

            let inv_n = 1.0 / n as f64;
            let mut grad_norm = 0.0f64;
            for (((j, w), vw), (&m, &is)) in self
                .weights
                .iter_mut()
                .enumerate()
                .zip(vel_w.iter_mut())
                .zip(means.iter().zip(&inv_s))
            {
                // Chain rule back into scaled coordinates: the gradient the
                // dense loop accumulates is Σᵢ errᵢ·(bᵢⱼ − mⱼ)/σⱼ.
                let g1 = masked_weight_sum(cols.row_words(j), &err);
                let gs = (g1 - m * err_sum) * is;
                let gj = gs * inv_n + lambda * *w;
                grad_norm += gj * gj;
                *vw = momentum * *vw - lr * gj;
                *w += *vw;
            }
            let grad_b = err_sum * inv_n;
            grad_norm += grad_b * grad_b;
            vel_b = momentum * vel_b - lr * grad_b;
            self.bias += vel_b;

            if grad_norm.sqrt() < self.params.tol {
                break;
            }
        }
        self.fitted = true;
        Ok(())
    }

    /// Class-1 probability per packed row, staying in bit coordinates.
    fn proba_packed(&self, bits: &BitMatrix) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if bits.dim().get() != self.weights.len() {
            return Err(MlError::ShapeMismatch {
                expected: format!("{} columns", self.weights.len()),
                got: format!("{} columns", bits.dim().get()),
            });
        }
        let means = self.scaler.means();
        let stds = self.scaler.stds();
        let mut r = vec![0.0f64; self.weights.len()];
        let mut offset = 0.0f64;
        for (((rj, &w), &m), &s) in r.iter_mut().zip(&self.weights).zip(means).zip(stds) {
            *rj = w / s;
            offset += *rj * m;
        }
        let base = self.bias - offset;
        Ok((0..bits.n_rows())
            .map(|i| sigmoid(base + masked_weight_sum(bits.row_words(i), &r)))
            .collect())
    }
}

impl Estimator for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<(), MlError> {
        let n_classes = validate_fit_inputs(x, y)?;
        if n_classes > 2 {
            return Err(MlError::InvalidParameter {
                name: "y",
                reason: "logistic regression supports binary labels only".into(),
            });
        }
        if self.params.c <= 0.0 {
            return Err(MlError::InvalidParameter {
                name: "c",
                reason: "must be positive".into(),
            });
        }
        let xs = self.scaler.fit_transform(x)?;
        let n = xs.n_rows();
        let p = xs.n_cols();
        let lambda = 1.0 / (self.params.c * n as f64);
        self.weights = vec![0.0; p];
        self.bias = 0.0;

        // Lipschitz bound for BCE: L ≤ tr(XᵀX)/(4n) + λ. After
        // standardisation tr(XᵀX)/n = p, so L ≤ p/4 + λ.
        let lr = 1.0 / (p as f64 / 4.0 + lambda);
        // Nesterov momentum accelerates the well-conditioned standardised
        // problem substantially.
        let momentum = 0.9;
        let mut vel_w = vec![0.0f64; p];
        let mut vel_b = 0.0f64;

        let mut grad_w = vec![0.0f64; p];
        for _ in 0..self.params.max_iter {
            grad_w.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0f64;
            for (i, &yi) in y.iter().enumerate() {
                let row = xs.row(i);
                // Look-ahead point for Nesterov.
                let mut z = self.bias + momentum * vel_b;
                for ((&w, &v), &vw) in self.weights.iter().zip(row).zip(vel_w.iter()) {
                    z += (w + momentum * vw) * f64::from(v);
                }
                let err = sigmoid(z) - yi as f64;
                for (g, &v) in grad_w.iter_mut().zip(row) {
                    *g += err * f64::from(v);
                }
                grad_b += err;
            }
            let inv_n = 1.0 / n as f64;
            let mut grad_norm = 0.0f64;
            for (g, w) in grad_w.iter_mut().zip(&self.weights) {
                *g = *g * inv_n + lambda * *w;
                grad_norm += *g * *g;
            }
            grad_b *= inv_n;
            grad_norm += grad_b * grad_b;

            for ((w, v), &g) in self.weights.iter_mut().zip(vel_w.iter_mut()).zip(&grad_w) {
                *v = momentum * *v - lr * g;
                *w += *v;
            }
            vel_b = momentum * vel_b - lr * grad_b;
            self.bias += vel_b;

            if grad_norm.sqrt() < self.params.tol {
                break;
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<usize>, MlError> {
        Ok(self
            .predict_proba(x)?
            .iter()
            .map(|&p| usize::from(p >= 0.5))
            .collect())
    }

    fn name(&self) -> &'static str {
        "Logistic Regression"
    }

    fn fit_features(&mut self, x: &Features<'_>, y: &[usize]) -> Result<(), MlError> {
        match x {
            Features::Dense(m) => self.fit(m, y),
            Features::Packed(b) => self.fit_packed(b, y),
        }
    }

    fn predict_features(&self, x: &Features<'_>) -> Result<Vec<usize>, MlError> {
        match x {
            Features::Dense(m) => self.predict(m),
            Features::Packed(b) => Ok(self
                .proba_packed(b)?
                .iter()
                .map(|&p| usize::from(p >= 0.5))
                .collect()),
        }
    }
}

impl ProbabilisticEstimator for LogisticRegression {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        let xs = self.scaler.transform(x)?;
        Ok((0..xs.n_rows())
            .map(|i| sigmoid(self.decision(xs.row(i))))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Matrix, Vec<usize>) {
        let rows: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32, (i % 3) as f32]).collect();
        let y: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn learns_linearly_separable_data() {
        let (x, y) = separable();
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y).unwrap();
        assert_eq!(lr.predict(&x).unwrap(), y);
    }

    #[test]
    fn probabilities_are_monotone_along_the_axis() {
        let (x, y) = separable();
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y).unwrap();
        let q = Matrix::from_rows(&[vec![0.0, 0.0], vec![9.5, 0.0], vec![19.0, 0.0]]).unwrap();
        let p = lr.predict_proba(&q).unwrap();
        assert!(p[0] < p[1] && p[1] < p[2]);
        assert!(p[0] < 0.5 && p[2] > 0.5);
    }

    #[test]
    fn robust_to_wildly_different_feature_scales() {
        // One feature in [0,1], one in [0, 100000]; internal standardisation
        // must keep GD stable.
        let rows: Vec<Vec<f32>> = (0..30)
            .map(|i| vec![i as f32 / 30.0, (i * 3_000) as f32])
            .collect();
        let y: Vec<usize> = (0..30).map(|i| usize::from(i >= 15)).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        lr.fit(&x, &y).unwrap();
        let acc = lr.accuracy(&x, &y).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn stronger_regularisation_shrinks_weights() {
        let (x, y) = separable();
        let mut weak = LogisticRegression::new(LogisticRegressionParams {
            c: 100.0,
            ..Default::default()
        });
        weak.fit(&x, &y).unwrap();
        let mut strong = LogisticRegression::new(LogisticRegressionParams {
            c: 0.001,
            ..Default::default()
        });
        strong.fit(&x, &y).unwrap();
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm(&strong.weights) < norm(&weak.weights));
    }

    #[test]
    fn invalid_params_and_unfitted_errors() {
        let (x, y) = separable();
        let mut lr = LogisticRegression::new(LogisticRegressionParams {
            c: 0.0,
            ..Default::default()
        });
        assert!(matches!(
            lr.fit(&x, &y),
            Err(MlError::InvalidParameter { name: "c", .. })
        ));
        let lr = LogisticRegression::new(LogisticRegressionParams::default());
        assert_eq!(lr.predict(&x), Err(MlError::NotFitted));
    }

    #[test]
    fn rejects_multiclass_labels() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let mut lr = LogisticRegression::new(LogisticRegressionParams::default());
        assert!(lr.fit(&x, &[0, 1, 2]).is_err());
    }

    fn random_bits(n: usize, dim: usize, seed: u64) -> hyperfex_hdc::BitMatrix {
        use hyperfex_hdc::prelude::*;
        let mut rng = SplitMix64::new(seed);
        let d = Dim::try_new(dim).unwrap();
        let hvs: Vec<BinaryHypervector> = (0..n)
            .map(|_| BinaryHypervector::random(d, &mut rng))
            .collect();
        BitMatrix::from_hypervectors(&hvs).unwrap()
    }

    #[test]
    fn packed_fit_tracks_dense_logits_closely() {
        let bits = random_bits(60, 300, 17);
        let y: Vec<usize> = (0..60).map(|i| usize::from(i % 2 == 0)).collect();
        let dense = crate::traits::densify(&bits);

        let mut a = LogisticRegression::new(LogisticRegressionParams::default());
        a.fit(&dense, &y).unwrap();
        let mut b = LogisticRegression::new(LogisticRegressionParams::default());
        b.fit_features(&Features::Packed(&bits), &y).unwrap();

        // Scaler statistics replicate the dense accumulation bit-exactly.
        for (x, z) in a.scaler.means().iter().zip(b.scaler.means()) {
            assert_eq!(x.to_bits(), z.to_bits());
        }
        for (x, z) in a.scaler.stds().iter().zip(b.scaler.stds()) {
            assert_eq!(x.to_bits(), z.to_bits());
        }

        let queries = random_bits(25, 300, 18);
        let dense_q = crate::traits::densify(&queries);
        let pa = a.predict_proba(&dense_q).unwrap();
        let pb = b.proba_packed(&queries).unwrap();
        for (x, z) in pa.iter().zip(&pb) {
            // Compare on the logit scale per the kernel contract.
            let la = (x / (1.0 - x)).ln();
            let lb = (z / (1.0 - z)).ln();
            assert!((la - lb).abs() < 1e-5, "logits {la} vs {lb}");
        }
        assert_eq!(
            b.predict_features(&Features::Packed(&queries)).unwrap(),
            a.predict(&dense_q).unwrap()
        );
    }

    #[test]
    fn mean_log_loss_decreases_with_training() {
        let (x, y) = separable();
        let mut short = LogisticRegression::new(LogisticRegressionParams {
            max_iter: 1,
            ..Default::default()
        });
        short.fit(&x, &y).unwrap();
        let mut long = LogisticRegression::new(LogisticRegressionParams {
            max_iter: 300,
            ..Default::default()
        });
        long.fit(&x, &y).unwrap();
        assert!(long.mean_log_loss(&x, &y).unwrap() < short.mean_log_loss(&x, &y).unwrap());
    }
}
