//! CART decision trees (Breiman et al. 1984), as wrapped by scikit-learn's
//! `DecisionTreeClassifier`.
//!
//! Greedy recursive partitioning with Gini impurity, optional depth and
//! leaf-size limits, and optional per-split random feature subsampling
//! (the primitive random forests build on). Split search sorts each
//! candidate feature once per node and sweeps thresholds between distinct
//! values; the sweep reuses per-node buffers to keep allocations out of the
//! hot path.

use crate::error::MlError;
use crate::linalg::Matrix;
use crate::traits::{
    validate_fit_inputs, validate_packed_fit_inputs, Estimator, Features, ProbabilisticEstimator,
};
use hyperfex_hdc::bitmatrix::{popcount_dot, BitMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How many features to examine per split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// Consider every feature (scikit-learn's decision-tree default).
    All,
    /// Consider `⌈√p⌉` random features (random-forest default).
    Sqrt,
    /// Consider `⌈log₂ p⌉` random features.
    Log2,
    /// Consider exactly `n` random features.
    Count(usize),
}

impl MaxFeatures {
    fn resolve(self, p: usize) -> usize {
        let n = match self {
            Self::All => p,
            Self::Sqrt => (p as f64).sqrt().ceil() as usize,
            Self::Log2 => (p as f64).log2().ceil() as usize,
            Self::Count(n) => n,
        };
        n.clamp(1, p)
    }
}

/// Hyper-parameters for a CART tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (`None` = grow until pure / exhausted, the sklearn
    /// default).
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split (sklearn default 2).
    pub min_samples_split: usize,
    /// Minimum samples in each child (sklearn default 1).
    pub min_samples_leaf: usize,
    /// Features examined per split.
    pub max_features: MaxFeatures,
    /// Minimum Gini decrease for a split to be kept (sklearn default 0).
    pub min_impurity_decrease: f64,
    /// Seed for feature subsampling (irrelevant under `MaxFeatures::All`).
    pub seed: u64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            min_impurity_decrease: 0.0,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class posterior at the leaf (normalised counts).
        proba: Vec<f32>,
        class: usize,
    },
    Split {
        feature: u32,
        threshold: f32,
        left: u32,
        right: u32,
    },
}

/// A fitted CART classification tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeClassifier {
    params: TreeParams,
    nodes: Vec<Node>,
    n_classes: usize,
    n_features: usize,
}

impl DecisionTreeClassifier {
    /// Creates an unfitted tree.
    #[must_use]
    pub fn new(params: TreeParams) -> Self {
        Self {
            params,
            nodes: Vec::new(),
            n_classes: 0,
            n_features: 0,
        }
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    #[must_use]
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree.
    #[must_use]
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: u32) -> usize {
            match &nodes[i as usize] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            walk(&self.nodes, 0)
        }
    }

    /// Fits with an externally supplied sample-index list and per-sample
    /// weights baked in as duplicates (used by bagging ensembles to avoid
    /// materialising bootstrap copies of `x`).
    pub(crate) fn fit_indices(
        &mut self,
        x: &Matrix,
        y: &[usize],
        indices: &[usize],
        n_classes: usize,
    ) -> Result<(), MlError> {
        if indices.is_empty() {
            return Err(MlError::EmptyTrainingSet);
        }
        self.n_classes = n_classes;
        self.n_features = x.n_cols();
        self.nodes.clear();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut builder = Builder {
            x,
            y,
            params: &self.params,
            n_classes,
            nodes: &mut self.nodes,
            rng: &mut rng,
            feature_pool: (0..x.n_cols() as u32).collect(),
            sort_buf: Vec::new(),
        };
        let mut idx = indices.to_vec();
        builder.build(&mut idx, 0);
        Ok(())
    }

    /// Packed-input fit. Grows the *identical* tree to [`Estimator::fit`]
    /// on the densified matrix, but finds every split with popcounts over
    /// per-class label masks instead of per-node sorts: a binary column
    /// has exactly one candidate boundary (threshold 0.5), and every
    /// quantity the dense sweep derives there — child counts, Gini terms,
    /// the strict-`<` tie order over features — is an integer or an exact
    /// f64 image of one. Node index sets stay representable as sample
    /// masks because the dense partition is stable and starts sorted.
    fn fit_packed(&mut self, b: &BitMatrix, y: &[usize]) -> Result<(), MlError> {
        let n_classes = validate_packed_fit_inputs(b, y)?;
        let n = b.n_rows();
        // Feature-major view: row `f` of the transpose is feature f's
        // 0/1 column as a mask over the n samples. Transpose only fails
        // on an empty input, which validation already rejected.
        let cols = b.transpose().map_err(|_| MlError::EmptyTrainingSet)?;
        let words = n.div_ceil(64);
        let mut class_masks = vec![vec![0u64; words]; n_classes];
        for (i, &label) in y.iter().enumerate() {
            class_masks[label][i / 64] |= 1u64 << (i % 64);
        }
        self.n_classes = n_classes;
        self.n_features = b.dim().get();
        self.nodes.clear();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut builder = PackedBuilder {
            cols: &cols,
            params: &self.params,
            n_classes,
            nodes: &mut self.nodes,
            rng: &mut rng,
            feature_pool: (0..b.dim().get() as u32).collect(),
            class_masks: &class_masks,
        };
        let mut root = vec![!0u64; words];
        if let Some(last) = root.last_mut() {
            let tail = n % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        builder.build(&root, 0);
        Ok(())
    }

    /// [`Self::leaf_proba`] over one bit-packed query row.
    fn leaf_proba_bits(&self, words: &[u64], dim: usize) -> Result<&[f32], MlError> {
        if self.nodes.is_empty() {
            return Err(MlError::NotFitted);
        }
        if dim != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: format!("{} features", self.n_features),
                got: format!("{dim} features"),
            });
        }
        let mut i = 0u32;
        loop {
            match &self.nodes[i as usize] {
                Node::Leaf { proba, .. } => return Ok(proba),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let f = *feature as usize;
                    let bit = (words[f / 64] >> (f % 64)) & 1;
                    // Same f32 comparison the dense walk makes on the
                    // unpacked 0.0/1.0 value.
                    i = if bit as f32 <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn leaf_proba(&self, row: &[f32]) -> Result<&[f32], MlError> {
        if self.nodes.is_empty() {
            return Err(MlError::NotFitted);
        }
        if row.len() != self.n_features {
            return Err(MlError::ShapeMismatch {
                expected: format!("{} features", self.n_features),
                got: format!("{} features", row.len()),
            });
        }
        let mut i = 0u32;
        loop {
            match &self.nodes[i as usize] {
                Node::Leaf { proba, .. } => return Ok(proba),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature as usize] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Class posterior for each row.
    pub fn predict_proba_full(&self, x: &Matrix) -> Result<Vec<Vec<f32>>, MlError> {
        (0..x.n_rows())
            .map(|i| self.leaf_proba(x.row(i)).map(<[f32]>::to_vec))
            .collect()
    }
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [usize],
    params: &'a TreeParams,
    n_classes: usize,
    nodes: &'a mut Vec<Node>,
    rng: &'a mut StdRng,
    feature_pool: Vec<u32>,
    sort_buf: Vec<(f32, usize)>,
}

impl Builder<'_> {
    /// Builds the subtree over `indices`, returning its node id.
    fn build(&mut self, indices: &mut [usize], depth: usize) -> u32 {
        let counts = self.class_counts(indices);
        let node_id = self.nodes.len() as u32;

        let gini = gini_impurity(&counts, indices.len());
        let depth_ok = self.params.max_depth.is_none_or(|d| depth < d);
        let should_split = depth_ok && indices.len() >= self.params.min_samples_split && gini > 0.0;

        if should_split {
            if let Some(split) = self.best_split(indices, gini) {
                // Partition in place around the threshold.
                let mid = partition(indices, |&i| {
                    self.x.get(i, split.feature as usize) <= split.threshold
                });
                // Guard: a degenerate partition means numerical ties; fall
                // through to a leaf instead of recursing forever.
                if mid > 0 && mid < indices.len() {
                    self.nodes.push(Node::Leaf {
                        proba: Vec::new(),
                        class: 0,
                    }); // placeholder
                    let (left_idx, right_idx) = indices.split_at_mut(mid);
                    let left = self.build(left_idx, depth + 1);
                    let right = self.build(right_idx, depth + 1);
                    self.nodes[node_id as usize] = Node::Split {
                        feature: split.feature,
                        threshold: split.threshold,
                        left,
                        right,
                    };
                    return node_id;
                }
            }
        }

        // Leaf.
        let total = indices.len() as f32;
        let proba: Vec<f32> = counts.iter().map(|&c| c as f32 / total).collect();
        let class = argmax_usize(&counts);
        self.nodes.push(Node::Leaf { proba, class });
        node_id
    }

    fn class_counts(&self, indices: &[usize]) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_classes];
        for &i in indices {
            counts[self.y[i]] += 1;
        }
        counts
    }

    fn best_split(&mut self, indices: &[usize], parent_gini: f64) -> Option<SplitCandidate> {
        let p = self.x.n_cols();
        let n_features = self.params.max_features.resolve(p);
        // Shuffle a persistent feature pool and take a prefix — O(p) per
        // node but allocation-free.
        if n_features < p {
            self.feature_pool.shuffle(self.rng);
        }
        let n = indices.len() as f64;
        let parent_counts = self.class_counts(indices);
        let mut best: Option<SplitCandidate> = None;

        for fi in 0..n_features {
            let feature = self.feature_pool[fi];
            // Sort samples by this feature's value.
            self.sort_buf.clear();
            self.sort_buf.extend(
                indices
                    .iter()
                    .map(|&i| (self.x.get(i, feature as usize), i)),
            );
            self.sort_buf.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

            // Sweep thresholds between distinct consecutive values.
            let mut left_counts = vec![0u32; self.n_classes];
            let mut left_n = 0usize;
            for w in 0..self.sort_buf.len() - 1 {
                let (v, i) = self.sort_buf[w];
                left_counts[self.y[i]] += 1;
                left_n += 1;
                let (v_next, _) = self.sort_buf[w + 1];
                if v == v_next {
                    continue;
                }
                let right_n = indices.len() - left_n;
                if left_n < self.params.min_samples_leaf || right_n < self.params.min_samples_leaf {
                    continue;
                }
                let gini_left = gini_impurity(&left_counts, left_n);
                let mut right_counts = parent_counts.clone();
                for (rc, &lc) in right_counts.iter_mut().zip(&left_counts) {
                    *rc -= lc;
                }
                let gini_right = gini_impurity(&right_counts, right_n);
                let weighted = (left_n as f64 * gini_left + right_n as f64 * gini_right) / n;
                let decrease = parent_gini - weighted;
                if decrease < self.params.min_impurity_decrease {
                    continue;
                }
                let candidate = SplitCandidate {
                    feature,
                    threshold: midpoint(v, v_next),
                    weighted_gini: weighted,
                };
                if best
                    .as_ref()
                    .is_none_or(|b| candidate.weighted_gini < b.weighted_gini)
                {
                    best = Some(candidate);
                }
            }
        }
        best
    }
}

struct SplitCandidate {
    feature: u32,
    threshold: f32,
    weighted_gini: f64,
}

/// Mask-based twin of [`Builder`] for bit-packed training data. Each node
/// is a bitmask over the n samples; class counts and split statistics come
/// from word-level popcounts. Mirrors [`Builder::build`]'s recursion shape,
/// node push order and RNG consumption exactly so the two produce
/// bit-identical `Vec<Node>` on the same (binary) data.
struct PackedBuilder<'a> {
    /// Transposed design matrix: row `f` is feature f's sample mask.
    cols: &'a BitMatrix,
    params: &'a TreeParams,
    n_classes: usize,
    nodes: &'a mut Vec<Node>,
    rng: &'a mut StdRng,
    feature_pool: Vec<u32>,
    /// Per-class sample masks (classes partition the samples).
    class_masks: &'a [Vec<u64>],
}

impl PackedBuilder<'_> {
    fn build(&mut self, mask: &[u64], depth: usize) -> u32 {
        let node_class: Vec<Vec<u64>> = self
            .class_masks
            .iter()
            .map(|cm| cm.iter().zip(mask).map(|(a, b)| a & b).collect())
            .collect();
        let counts: Vec<u32> = node_class
            .iter()
            .map(|m| m.iter().map(|w| w.count_ones()).sum::<u32>())
            .collect();
        let n_node: usize = counts.iter().map(|&c| c as usize).sum();
        let node_id = self.nodes.len() as u32;

        let gini = gini_impurity(&counts, n_node);
        let depth_ok = self.params.max_depth.is_none_or(|d| depth < d);
        let should_split = depth_ok && n_node >= self.params.min_samples_split && gini > 0.0;

        if should_split {
            if let Some(split) = self.best_split(&node_class, &counts, n_node, gini) {
                // A candidate guarantees both children non-empty, matching
                // the dense builder's degenerate-partition guard.
                let col = self.cols.row_words(split.feature as usize);
                let left_mask: Vec<u64> = mask.iter().zip(col).map(|(m, c)| m & !c).collect();
                let right_mask: Vec<u64> = mask.iter().zip(col).map(|(m, c)| m & c).collect();
                self.nodes.push(Node::Leaf {
                    proba: Vec::new(),
                    class: 0,
                }); // placeholder
                let left = self.build(&left_mask, depth + 1);
                let right = self.build(&right_mask, depth + 1);
                self.nodes[node_id as usize] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                return node_id;
            }
        }

        let total = n_node as f32;
        let proba: Vec<f32> = counts.iter().map(|&c| c as f32 / total).collect();
        let class = argmax_usize(&counts);
        self.nodes.push(Node::Leaf { proba, class });
        node_id
    }

    fn best_split(
        &mut self,
        node_class: &[Vec<u64>],
        parent_counts: &[u32],
        n_node: usize,
        parent_gini: f64,
    ) -> Option<SplitCandidate> {
        let p = self.cols.n_rows();
        let n_features = self.params.max_features.resolve(p);
        if n_features < p {
            self.feature_pool.shuffle(self.rng);
        }
        let n = n_node as f64;
        let mut best: Option<SplitCandidate> = None;
        let mut left_counts = vec![0u32; self.n_classes];

        for fi in 0..n_features {
            let feature = self.feature_pool[fi];
            let col = self.cols.row_words(feature as usize);
            // Ones per class within the node; zeros go left of the 0|1
            // boundary, so left counts fall out by subtraction.
            let mut right_n = 0usize;
            for ((lc, ncm), &pc) in left_counts.iter_mut().zip(node_class).zip(parent_counts) {
                let ones = popcount_dot(col, ncm);
                *lc = pc - ones as u32;
                right_n += ones;
            }
            let left_n = n_node - right_n;
            if left_n == 0 || right_n == 0 {
                // Constant column in this node: no threshold boundary.
                continue;
            }
            if left_n < self.params.min_samples_leaf || right_n < self.params.min_samples_leaf {
                continue;
            }
            let gini_left = gini_impurity(&left_counts, left_n);
            let mut right_counts = parent_counts.to_vec();
            for (rc, &lc) in right_counts.iter_mut().zip(&left_counts) {
                *rc -= lc;
            }
            let gini_right = gini_impurity(&right_counts, right_n);
            let weighted = (left_n as f64 * gini_left + right_n as f64 * gini_right) / n;
            let decrease = parent_gini - weighted;
            if decrease < self.params.min_impurity_decrease {
                continue;
            }
            let candidate = SplitCandidate {
                feature,
                threshold: midpoint(0.0, 1.0),
                weighted_gini: weighted,
            };
            if best
                .as_ref()
                .is_none_or(|b| candidate.weighted_gini < b.weighted_gini)
            {
                best = Some(candidate);
            }
        }
        best
    }
}

/// Gini impurity `1 − Σ pᵢ²` of a class-count vector.
fn gini_impurity(counts: &[u32], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    let sum_sq: f64 = counts
        .iter()
        .map(|&c| {
            let p = f64::from(c) / n;
            p * p
        })
        .sum();
    1.0 - sum_sq
}

/// Midpoint between two consecutive distinct values, robust to f32 rounding
/// (falls back to the lower value when the average rounds onto `b`).
fn midpoint(a: f32, b: f32) -> f32 {
    let m = (a + b) / 2.0;
    if m >= b {
        a
    } else {
        m
    }
}

/// Stable-order in-place partition; returns the size of the true side.
fn partition<T, F: Fn(&T) -> bool>(slice: &mut [T], pred: F) -> usize
where
    T: Copy,
{
    // Simple two-pass copy keeps relative order deterministic.
    let mut left: Vec<T> = Vec::with_capacity(slice.len());
    let mut right: Vec<T> = Vec::with_capacity(slice.len());
    for &v in slice.iter() {
        if pred(&v) {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    let mid = left.len();
    slice[..mid].copy_from_slice(&left);
    slice[mid..].copy_from_slice(&right);
    mid
}

fn argmax_usize(counts: &[u32]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map_or(0, |(i, _)| i)
}

impl Estimator for DecisionTreeClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<(), MlError> {
        let n_classes = validate_fit_inputs(x, y)?;
        let indices: Vec<usize> = (0..x.n_rows()).collect();
        self.fit_indices(x, y, &indices, n_classes)
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<usize>, MlError> {
        (0..x.n_rows())
            .map(|i| {
                self.leaf_proba(x.row(i)).map(|p| {
                    p.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                        .map_or(0, |(c, _)| c)
                })
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "Decision Tree"
    }

    fn fit_features(&mut self, x: &Features<'_>, y: &[usize]) -> Result<(), MlError> {
        match x {
            Features::Dense(m) => self.fit(m, y),
            Features::Packed(b) => self.fit_packed(b, y),
        }
    }

    fn predict_features(&self, x: &Features<'_>) -> Result<Vec<usize>, MlError> {
        let b = match x {
            Features::Dense(m) => return self.predict(m),
            Features::Packed(b) => b,
        };
        (0..b.n_rows())
            .map(|i| {
                self.leaf_proba_bits(b.row_words(i), b.dim().get())
                    .map(|p| {
                        p.iter()
                            .enumerate()
                            .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                            .map_or(0, |(c, _)| c)
                    })
            })
            .collect()
    }
}

impl ProbabilisticEstimator for DecisionTreeClassifier {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        (0..x.n_rows())
            .map(|i| {
                self.leaf_proba(x.row(i))
                    .map(|p| p.get(1).copied().unwrap_or(0.0) as f64)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ])
        .unwrap();
        (x, vec![0, 1, 1, 0])
    }

    #[test]
    fn learns_xor_exactly() {
        let (x, y) = xor_data();
        let mut tree = DecisionTreeClassifier::new(TreeParams::default());
        tree.fit(&x, &y).unwrap();
        assert_eq!(tree.predict(&x).unwrap(), y);
        assert!(tree.depth() >= 2, "XOR needs at least two levels");
    }

    #[test]
    fn max_depth_limits_growth() {
        let (x, y) = xor_data();
        let mut stump = DecisionTreeClassifier::new(TreeParams {
            max_depth: Some(1),
            ..TreeParams::default()
        });
        stump.fit(&x, &y).unwrap();
        assert!(stump.depth() <= 1);
        // A depth-1 stump cannot express XOR.
        assert_ne!(stump.predict(&x).unwrap(), y);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![10.0]]).unwrap();
        let y = vec![0, 0, 0, 1];
        let mut tree = DecisionTreeClassifier::new(TreeParams::default());
        tree.fit(&x, &y).unwrap();
        // Single split suffices.
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.n_nodes(), 3);
        assert_eq!(tree.predict(&x).unwrap(), y);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let y = vec![0, 0, 1, 1];
        let mut tree = DecisionTreeClassifier::new(TreeParams {
            min_samples_leaf: 2,
            ..TreeParams::default()
        });
        tree.fit(&x, &y).unwrap();
        // The only legal split is 2-2.
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.predict(&x).unwrap(), y);
    }

    #[test]
    fn predict_proba_reflects_leaf_composition() {
        // Force a leaf with mixed classes via min_samples_split.
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![5.0]]).unwrap();
        let y = vec![0, 0, 1, 1];
        let mut tree = DecisionTreeClassifier::new(TreeParams::default());
        tree.fit(&x, &y).unwrap();
        let proba = tree.predict_proba(&x).unwrap();
        // Rows 0-2 share a leaf with 2×class0 + 1×class1.
        assert!((proba[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((proba[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn unfitted_predict_errors() {
        let tree = DecisionTreeClassifier::new(TreeParams::default());
        assert!(tree.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn fit_validates_inputs() {
        let mut tree = DecisionTreeClassifier::new(TreeParams::default());
        assert!(tree.fit(&Matrix::zeros(0, 2), &[]).is_err());
        let x = Matrix::zeros(3, 1);
        assert!(matches!(
            tree.fit(&x, &[0, 0, 0]),
            Err(MlError::SingleClass)
        ));
    }

    #[test]
    fn feature_dimension_checked_at_predict() {
        let (x, y) = xor_data();
        let mut tree = DecisionTreeClassifier::new(TreeParams::default());
        tree.fit(&x, &y).unwrap();
        assert!(tree.predict(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn gini_values() {
        assert_eq!(gini_impurity(&[4, 0], 4), 0.0);
        assert!((gini_impurity(&[2, 2], 4) - 0.5).abs() < 1e-12);
        assert_eq!(gini_impurity(&[], 0), 0.0);
    }

    #[test]
    fn feature_subsampling_is_deterministic_per_seed() {
        let (x, y) = xor_data();
        let params = TreeParams {
            max_features: MaxFeatures::Count(1),
            seed: 5,
            ..TreeParams::default()
        };
        let mut a = DecisionTreeClassifier::new(params.clone());
        let mut b = DecisionTreeClassifier::new(params);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn handles_constant_features_gracefully() {
        let x = Matrix::from_rows(&[vec![1.0, 7.0], vec![2.0, 7.0], vec![3.0, 7.0]]).unwrap();
        let y = vec![0, 1, 1];
        let mut tree = DecisionTreeClassifier::new(TreeParams::default());
        tree.fit(&x, &y).unwrap();
        assert_eq!(tree.predict(&x).unwrap(), y);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(100), 100);
        assert_eq!(MaxFeatures::Sqrt.resolve(100), 10);
        assert_eq!(MaxFeatures::Log2.resolve(1024), 10);
        assert_eq!(MaxFeatures::Count(5).resolve(3), 3);
        assert_eq!(MaxFeatures::Count(0).resolve(3), 1);
    }

    fn random_bits(n: usize, dim: usize, seed: u64) -> BitMatrix {
        use hyperfex_hdc::prelude::*;
        let mut rng = SplitMix64::new(seed);
        let d = Dim::try_new(dim).unwrap();
        let hvs: Vec<BinaryHypervector> = (0..n)
            .map(|_| BinaryHypervector::random(d, &mut rng))
            .collect();
        BitMatrix::from_hypervectors(&hvs).unwrap()
    }

    fn assert_same_nodes(a: &DecisionTreeClassifier, b: &DecisionTreeClassifier) {
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (na, nb) in a.nodes.iter().zip(&b.nodes) {
            match (na, nb) {
                (
                    Node::Leaf {
                        proba: pa,
                        class: ca,
                    },
                    Node::Leaf {
                        proba: pb,
                        class: cb,
                    },
                ) => {
                    assert_eq!(ca, cb);
                    assert_eq!(pa, pb, "leaf posteriors must be bit-identical");
                }
                (
                    Node::Split {
                        feature: fa,
                        threshold: ta,
                        left: la,
                        right: ra,
                    },
                    Node::Split {
                        feature: fb,
                        threshold: tb,
                        left: lb,
                        right: rb,
                    },
                ) => {
                    assert_eq!((fa, la, ra), (fb, lb, rb));
                    assert_eq!(ta.to_bits(), tb.to_bits());
                }
                _ => panic!("node kind mismatch"),
            }
        }
    }

    #[test]
    fn packed_fit_builds_bit_identical_tree() {
        for (params, seed) in [
            (TreeParams::default(), 3u64),
            (
                TreeParams {
                    max_depth: Some(4),
                    min_samples_leaf: 3,
                    ..TreeParams::default()
                },
                4,
            ),
            (
                TreeParams {
                    max_features: MaxFeatures::Sqrt,
                    seed: 11,
                    ..TreeParams::default()
                },
                5,
            ),
        ] {
            let bits = random_bits(60, 130, seed);
            let y: Vec<usize> = (0..60).map(|i| usize::from(i % 3 != 1)).collect();
            let dense = crate::traits::densify(&bits);

            let mut a = DecisionTreeClassifier::new(params.clone());
            a.fit(&dense, &y).unwrap();
            let mut b = DecisionTreeClassifier::new(params);
            b.fit_features(&Features::Packed(&bits), &y).unwrap();
            assert_same_nodes(&a, &b);

            let queries = random_bits(20, 130, seed + 100);
            let dense_q = crate::traits::densify(&queries);
            assert_eq!(
                b.predict_features(&Features::Packed(&queries)).unwrap(),
                a.predict(&dense_q).unwrap()
            );
        }
    }

    #[test]
    fn packed_fit_validates_inputs() {
        let bits = random_bits(5, 32, 1);
        let mut tree = DecisionTreeClassifier::new(TreeParams::default());
        assert!(matches!(
            tree.fit_features(&Features::Packed(&bits), &[0; 5]),
            Err(MlError::SingleClass)
        ));
        assert!(matches!(
            tree.fit_features(&Features::Packed(&bits), &[0, 1]),
            Err(MlError::LabelLengthMismatch { .. })
        ));
    }
}
