//! Rule family 4: concurrency-capture and relaxed-ordering lints.
//!
//! **Capture rule.** Inside any closure passed to the vendored rayon's
//! `scope`/`in_place_scope`/`join`/`spawn` or a `par_*` iterator chain,
//! mutating state captured from *outside* the parallel region is a
//! violation: every worker would race on the same location. Legitimate
//! mutation goes through per-task scratch (anything bound inside the
//! region — a `chunks_mut` chunk, a `let` local, a closure parameter),
//! atomics (method calls like `fetch_add` are not assignments and never
//! match), or lock guards (`.lock()`/`.write()`/`.borrow_mut()` in the
//! assignment chain are recognised and exempt). Sites with a justified
//! exception carry `// lint: capture-ok (<reason>)`.
//!
//! **Relaxed rule.** `Ordering::Relaxed` provides no happens-before edge:
//! correct uses (monotone counters, saturating maxima) must say why with
//! `// lint: relaxed-ok (<reason>)` on the line, the line above, or the
//! enclosing function's annotation block; everything else is a violation.
//! The annotation is the allowlist — there is no separate file.

use crate::diag::{Rule, Violation};
use crate::lex::TokenKind;
use crate::source::Analysis;
use crate::structure::{self, Ctx};

/// Chain methods that make a mutation lock- or cell-mediated.
const GUARD_METHODS: [&str; 5] = ["lock", "write", "borrow_mut", "get_mut", "entry"];

const CAPTURE_ANNOTATION: &str = "lint: capture-ok (";
const RELAXED_ANNOTATION: &str = "lint: relaxed-ok (";

/// Checks one analysed file for both rules.
pub fn check_file(rel_path: &str, analysis: &Analysis) -> Vec<Violation> {
    let ctx = analysis.ctx();
    let mut out = check_captures(rel_path, analysis, &ctx);
    out.extend(check_relaxed(rel_path, analysis, &ctx));
    out
}

fn check_captures(rel_path: &str, analysis: &Analysis, ctx: &Ctx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    for region in structure::parallel_regions(ctx) {
        let bound = structure::bound_names(ctx, region.sig_range);
        let (start, end) = region.sig_range;
        let mut si = start;
        while si <= end {
            if let Some(m) = mutation_at(ctx, si, end) {
                si = m.resume_si;
                let line = m.line;
                if analysis.in_test.get(line - 1).copied().unwrap_or(false) {
                    continue;
                }
                if bound.iter().any(|b| b == &m.head) {
                    continue; // per-task scratch bound inside the region
                }
                if m.chain_methods
                    .iter()
                    .any(|c| GUARD_METHODS.contains(&c.as_str()))
                {
                    continue; // lock/cell-guarded access
                }
                if analysis.line_has_annotation(line, CAPTURE_ANNOTATION) {
                    continue;
                }
                out.push(Violation {
                    file: rel_path.to_string(),
                    line,
                    rule: Rule::ConcurrencyCapture,
                    message: format!(
                        "`{}` is mutated inside a closure passed to `{}` but is captured \
                         from outside the parallel region — use per-task scratch bound \
                         inside the region, an atomic, a lock, or annotate with \
                         `// lint: capture-ok (<reason>)`",
                        m.head, region.callee
                    ),
                    line_text: analysis.raw.get(line - 1).cloned().unwrap_or_default(),
                });
            } else {
                si += 1;
            }
        }
    }
    out
}

/// One detected mutation: the head identifier of the assignment target (or
/// `&mut` borrow), the methods in its access chain, and where to resume.
struct Mutation {
    head: String,
    chain_methods: Vec<String>,
    line: usize,
    resume_si: usize,
}

/// If sig-index `si` starts a mutation (`target = …`, `target op= …`,
/// `&mut target`), returns it.
fn mutation_at(ctx: &Ctx<'_>, si: usize, end: usize) -> Option<Mutation> {
    // `&mut ident` borrow of a non-local.
    if ctx.is_punct(si, '&')
        && si + 2 <= end
        && ctx.kind(si + 1) == TokenKind::Ident
        && ctx.text(si + 1) == "mut"
        && ctx.kind(si + 2) == TokenKind::Ident
        && ctx.text(si + 2) != "self"
    {
        return Some(Mutation {
            head: ctx.text(si + 2).to_string(),
            chain_methods: Vec::new(),
            line: ctx.line(si + 2),
            resume_si: si + 3,
        });
    }
    // Assignment operators. Find a `=` that is genuinely assignment.
    if !ctx.is_punct(si, '=') || si == 0 {
        return None;
    }
    // Exclude `==`, `=>`, `<=`, `>=`, `!=` and the second `=` of `==`.
    if si < end && (ctx.is_punct(si + 1, '=') || ctx.is_punct(si + 1, '>')) {
        return None;
    }
    let mut target_end = si - 1; // last token of the assignment target
    if ctx.kind(si - 1) == TokenKind::Punct {
        match ctx.text(si - 1).as_bytes().first() {
            // Compound assignment `x += …`: target sits before the operator.
            Some(b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^') if si >= 2 => {
                target_end = si - 2;
            }
            // `<<=` / `>>=`: two identical shift puncts before the `=`.
            Some(b'<' | b'>') if si >= 3 && ctx.text(si - 2) == ctx.text(si - 1) => {
                target_end = si - 3;
            }
            // `<=` / `>=` / `==` / `!=`, or no room for a target.
            _ => return None,
        }
    }
    if ctx.kind(target_end) != TokenKind::Ident && !ctx.is_punct(target_end, ']') {
        return None;
    }
    // Walk the target chain backwards to its head identifier, collecting
    // method names along the way (`*m.lock().unwrap()[i] = …` → head `m`,
    // methods [lock, unwrap]).
    let mut chain_methods = Vec::new();
    let mut ti = target_end;
    let head = loop {
        match ctx.kind(ti) {
            TokenKind::Ident => {
                // Preceded by `.`: a field/method step — keep walking left.
                if ti >= 2 && ctx.is_punct(ti - 1, '.') {
                    ti -= 2;
                } else {
                    break ctx.text(ti).to_string();
                }
            }
            TokenKind::Punct if matches!(ctx.text(ti).as_bytes().first(), Some(b']' | b')')) => {
                let open = matching_open(ctx, ti)?;
                if ctx.is_punct(ti, ')')
                    && open >= 3
                    && ctx.kind(open - 1) == TokenKind::Ident
                    && ctx.is_punct(open - 2, '.')
                {
                    chain_methods.push(ctx.text(open - 1).to_string());
                    ti = open - 3;
                } else if open >= 1 {
                    ti = open - 1;
                } else {
                    return None;
                }
            }
            _ => return None,
        }
        if ti == 0 && ctx.kind(0) != TokenKind::Ident {
            return None;
        }
    };
    // Statement-position check: the token before the whole target must not
    // suggest we are mid-expression binding (`let x = …` is handled by the
    // bound-names pass; struct literals `Foo { x: 1 }` have `:` before the
    // value, never before the target ident at statement level).
    Some(Mutation {
        head,
        chain_methods,
        line: ctx.line(si),
        resume_si: si + 1,
    })
}

/// Backward bracket matching: sig-index of the opener for the closer at
/// `close_si`.
fn matching_open(ctx: &Ctx<'_>, close_si: usize) -> Option<usize> {
    let mut depth = 0i64;
    for si in (0..=close_si).rev() {
        if ctx.kind(si) != TokenKind::Punct {
            continue;
        }
        match ctx.text(si).as_bytes().first() {
            Some(b')' | b']' | b'}') => depth += 1,
            Some(b'(' | b'[' | b'{') => {
                depth -= 1;
                if depth == 0 {
                    return Some(si);
                }
            }
            _ => {}
        }
    }
    None
}

fn check_relaxed(rel_path: &str, analysis: &Analysis, ctx: &Ctx<'_>) -> Vec<Violation> {
    let mut out = Vec::new();
    for si in 2..ctx.sig.len() {
        if ctx.kind(si) != TokenKind::Ident || ctx.text(si) != "Relaxed" {
            continue;
        }
        if !(ctx.is_punct(si - 1, ':')
            && ctx.is_punct(si - 2, ':')
            && si >= 3
            && ctx.kind(si - 3) == TokenKind::Ident
            && ctx.text(si - 3) == "Ordering")
        {
            continue;
        }
        let line = ctx.line(si);
        if analysis.in_test.get(line - 1).copied().unwrap_or(false) {
            continue;
        }
        if analysis.line_has_annotation(line, RELAXED_ANNOTATION) {
            continue;
        }
        out.push(Violation {
            file: rel_path.to_string(),
            line,
            rule: Rule::RelaxedOrdering,
            message: "`Ordering::Relaxed` provides no happens-before edge — justify it \
                      with `// lint: relaxed-ok (<reason>)` or use Acquire/Release"
                .to_string(),
            line_text: analysis.raw.get(line - 1).cloned().unwrap_or_default(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Violation> {
        check_file("crates/hdc/src/lib.rs", &Analysis::new(src))
    }

    #[test]
    fn outer_capture_mutation_in_scope_closure_is_flagged() {
        let src = "fn f() {\n\
                       let mut hits = 0u64;\n\
                       rayon::scope(|s| {\n\
                           s.spawn(|_| { hits += 1; });\n\
                       });\n\
                   }\n";
        let v = check(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ConcurrencyCapture);
        assert_eq!(v[0].line, 4);
        assert!(v[0].message.contains("hits"));
    }

    #[test]
    fn per_task_scratch_bound_inside_the_region_is_clean() {
        let src = "fn f(out: &mut [u64], n: usize) {\n\
                       rayon::scope(|s| {\n\
                           for chunk in out.chunks_mut(n) {\n\
                               s.spawn(move |_| {\n\
                                   let mut acc = 0;\n\
                                   acc += 1;\n\
                                   chunk[0] = acc;\n\
                               });\n\
                           }\n\
                       });\n\
                   }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn slot_deref_writes_to_region_bound_names_are_clean() {
        let src = "fn f(slots: &mut [Vec<u32>], rows: &[u32]) {\n\
                       rayon::scope(|s| {\n\
                           for (slot, chunk) in slots.iter_mut().zip(rows.chunks(2)) {\n\
                               s.spawn(move |_| { *slot = chunk.to_vec(); });\n\
                           }\n\
                       });\n\
                   }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn lock_guarded_mutation_is_clean() {
        let src = "fn f(m: &std::sync::Mutex<u64>) {\n\
                       rayon::scope(|s| {\n\
                           s.spawn(|_| { *m.lock().unwrap_or_else(|e| e.into_inner()) = 3; });\n\
                       });\n\
                   }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn annotation_waives_the_capture() {
        let src = "fn f() {\n\
                       let mut hits = 0u64;\n\
                       rayon::scope(|s| {\n\
                           // lint: capture-ok (single spawn: no concurrent writer exists)\n\
                           s.spawn(|_| { hits += 1; });\n\
                       });\n\
                   }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn relaxed_ordering_requires_a_reason() {
        let bad = "fn f(c: &std::sync::atomic::AtomicU64) {\n\
                       c.fetch_add(1, Ordering::Relaxed);\n\
                   }\n";
        let v = check(bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RelaxedOrdering);
        assert_eq!(v[0].line, 2);

        let good = "fn f(c: &std::sync::atomic::AtomicU64) {\n\
                        // lint: relaxed-ok (monotone counter; no ordering needed)\n\
                        c.fetch_add(1, Ordering::Relaxed);\n\
                    }\n";
        assert!(check(good).is_empty());
    }

    #[test]
    fn relaxed_in_strings_comments_and_tests_is_invisible() {
        let src = "fn f() -> &'static str {\n\
                       // Ordering::Relaxed in a comment\n\
                       \"Ordering::Relaxed in a string\"\n\
                   }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t(c: &AtomicU64) { c.load(Ordering::Relaxed); }\n\
                   }\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn comparisons_inside_regions_are_not_assignments() {
        let src = "fn f(xs: &[u64]) -> bool {\n\
                       let mut any = false;\n\
                       rayon::scope(|s| {\n\
                           s.spawn(|_| { let ok = xs[0] <= 3 && xs[1] >= 2 && xs[2] == 1; drop(ok); });\n\
                       });\n\
                       any\n\
                   }\n";
        let v = check(src);
        assert!(v.is_empty(), "{v:?}");
    }
}
