//! Random forest (Ho 1995, Breiman 2001): bagged CART trees with per-split
//! feature subsampling, soft-voted like scikit-learn.

use crate::error::MlError;
use crate::linalg::Matrix;
use crate::traits::{validate_fit_inputs, Estimator, ProbabilisticEstimator};
use crate::tree::{DecisionTreeClassifier, MaxFeatures, TreeParams};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for the forest (defaults match scikit-learn 1.x).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestParams {
    /// Number of trees (sklearn default 100).
    pub n_estimators: usize,
    /// Depth cap per tree (sklearn default: unlimited).
    pub max_depth: Option<usize>,
    /// Features per split (sklearn default: √p).
    pub max_features: MaxFeatures,
    /// Minimum samples to split (sklearn default 2).
    pub min_samples_split: usize,
    /// Minimum samples per leaf (sklearn default 1).
    pub min_samples_leaf: usize,
    /// Draw bootstrap samples (sklearn default true).
    pub bootstrap: bool,
    /// Master seed; tree `t` uses stream `seed + t`.
    pub seed: u64,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            max_depth: None,
            max_features: MaxFeatures::Sqrt,
            min_samples_split: 2,
            min_samples_leaf: 1,
            bootstrap: true,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestClassifier {
    params: RandomForestParams,
    trees: Vec<DecisionTreeClassifier>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Creates an unfitted forest.
    #[must_use]
    pub fn new(params: RandomForestParams) -> Self {
        Self {
            params,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// Number of fitted trees.
    #[must_use]
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Mean class posterior across trees (soft voting).
    pub fn predict_proba_full(&self, x: &Matrix) -> Result<Vec<Vec<f64>>, MlError> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let per_tree: Vec<Vec<Vec<f32>>> = self
            .trees
            .par_iter()
            .map(|t| t.predict_proba_full(x))
            .collect::<Result<_, _>>()?;
        let n = x.n_rows();
        let mut out = vec![vec![0.0f64; self.n_classes]; n];
        for tree_probs in &per_tree {
            for (acc, p) in out.iter_mut().zip(tree_probs) {
                for (a, &v) in acc.iter_mut().zip(p) {
                    *a += f64::from(v);
                }
            }
        }
        let t = self.trees.len() as f64;
        for row in &mut out {
            for v in row.iter_mut() {
                *v /= t;
            }
        }
        Ok(out)
    }
}

impl Estimator for RandomForestClassifier {
    fn fit(&mut self, x: &Matrix, y: &[usize]) -> Result<(), MlError> {
        let _span = crate::obs::span("ml/forest_fit");
        if self.params.n_estimators == 0 {
            return Err(MlError::InvalidParameter {
                name: "n_estimators",
                reason: "must be at least 1".into(),
            });
        }
        let n_classes = validate_fit_inputs(x, y)?;
        self.n_classes = n_classes;
        let n = x.n_rows();
        let params = &self.params;
        // Each tree draws an independent bootstrap and feature-stream from
        // a per-tree seed, so the parallel build is deterministic.
        self.trees = (0..params.n_estimators)
            .into_par_iter()
            .map(|t| {
                let tree_seed = params
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t as u64 + 1));
                let indices: Vec<usize> = if params.bootstrap {
                    let mut rng = StdRng::seed_from_u64(tree_seed);
                    (0..n).map(|_| rng.random_range(0..n)).collect()
                } else {
                    (0..n).collect()
                };
                let mut tree = DecisionTreeClassifier::new(TreeParams {
                    max_depth: params.max_depth,
                    min_samples_split: params.min_samples_split,
                    min_samples_leaf: params.min_samples_leaf,
                    max_features: params.max_features,
                    min_impurity_decrease: 0.0,
                    seed: tree_seed ^ 0xA5A5_A5A5,
                });
                tree.fit_indices(x, y, &indices, n_classes)?;
                Ok(tree)
            })
            .collect::<Result<_, MlError>>()?;
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<usize>, MlError> {
        let _span = crate::obs::span("ml/forest_predict");
        let proba = self.predict_proba_full(x)?;
        Ok(proba
            .iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                    .map_or(0, |(c, _)| c)
            })
            .collect())
    }

    fn name(&self) -> &'static str {
        "Random Forest"
    }
}

impl ProbabilisticEstimator for RandomForestClassifier {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>, MlError> {
        Ok(self
            .predict_proba_full(x)?
            .iter()
            .map(|p| p.get(1).copied().unwrap_or(0.0))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n_per_class: usize) -> (Matrix, Vec<usize>) {
        // Two well-separated Gaussian-ish blobs on a deterministic lattice.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_per_class {
            let j = (i % 5) as f32 * 0.1;
            rows.push(vec![0.0 + j, 1.0 - j]);
            y.push(0);
            rows.push(vec![5.0 + j, 6.0 - j]);
            y.push(1);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn small_forest(seed: u64) -> RandomForestClassifier {
        RandomForestClassifier::new(RandomForestParams {
            n_estimators: 15,
            seed,
            ..RandomForestParams::default()
        })
    }

    #[test]
    fn separable_blobs_are_learned() {
        let (x, y) = blobs(20);
        let mut rf = small_forest(1);
        rf.fit(&x, &y).unwrap();
        assert_eq!(rf.predict(&x).unwrap(), y);
        assert_eq!(rf.n_trees(), 15);
    }

    #[test]
    fn predictions_are_deterministic_per_seed() {
        let (x, y) = blobs(10);
        let mut a = small_forest(7);
        let mut b = small_forest(7);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn different_seeds_give_different_forests() {
        // Inject label noise so leaf posteriors depend on the bootstrap
        // draw — on perfectly separable data every tree is identical and
        // seeds cannot show through.
        let (x, mut y) = blobs(10);
        y[0] = 1;
        y[1] = 0;
        let mut a = small_forest(1);
        let mut b = small_forest(2);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        // Probabilities (not hard labels) expose the underlying diversity.
        assert_ne!(a.predict_proba(&x).unwrap(), b.predict_proba(&x).unwrap());
    }

    #[test]
    fn proba_is_a_distribution() {
        let (x, y) = blobs(10);
        let mut rf = small_forest(3);
        rf.fit(&x, &y).unwrap();
        for p in rf.predict_proba_full(&x).unwrap() {
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn zero_estimators_rejected() {
        let (x, y) = blobs(5);
        let mut rf = RandomForestClassifier::new(RandomForestParams {
            n_estimators: 0,
            ..RandomForestParams::default()
        });
        assert!(matches!(
            rf.fit(&x, &y),
            Err(MlError::InvalidParameter {
                name: "n_estimators",
                ..
            })
        ));
    }

    #[test]
    fn unfitted_errors() {
        let rf = small_forest(0);
        assert!(rf.predict(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn no_bootstrap_mode_works() {
        let (x, y) = blobs(10);
        let mut rf = RandomForestClassifier::new(RandomForestParams {
            n_estimators: 5,
            bootstrap: false,
            ..RandomForestParams::default()
        });
        rf.fit(&x, &y).unwrap();
        assert_eq!(rf.predict(&x).unwrap(), y);
    }
}
