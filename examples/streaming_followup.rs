//! Online clinical deployment (§III-B future-work scenario): start from a
//! small seed cohort, then fold each newly assessed patient into the
//! prototype memory and watch held-out accuracy improve — no retraining
//! pass, just integer prototype updates.
//!
//! ```sh
//! cargo run --release -p hyperfex --example streaming_followup
//! ```

use hyperfex::prelude::*;
use hyperfex_hdc::classify::CentroidClassifier;
use hyperfex_hdc::rng::SplitMix64;

fn main() -> Result<(), HyperfexError> {
    let cohort = sylhet::generate(&SylhetConfig::default())?;
    let dim = Dim::new(4_000);

    // Encode everything once (encoding is stateless after fit).
    let mut extractor = HdcFeatureExtractor::new(dim, 9);
    let hvs = extractor.fit_transform(&cohort)?;
    let labels = cohort.labels();

    // Hold out every 5th patient for evaluation; stream the rest in a
    // shuffled order (the generator emits positives first, but a clinic
    // sees interleaved arrivals).
    let mut stream: Vec<usize> = (0..cohort.n_rows()).filter(|i| i % 5 != 0).collect();
    let holdout: Vec<usize> = (0..cohort.n_rows()).filter(|i| i % 5 == 0).collect();
    let mut order_rng = SplitMix64::new(2026);
    order_rng.shuffle(&mut stream);

    // Seed the memory with the first 20 streamed patients.
    let seed = &stream[..20];
    let mut memory = CentroidClassifier::new();
    memory.fit(
        &seed.iter().map(|&i| hvs[i].clone()).collect::<Vec<_>>(),
        &seed.iter().map(|&i| labels[i]).collect::<Vec<_>>(),
    )?;

    let evaluate = |memory: &CentroidClassifier| -> Result<f64, HyperfexError> {
        let mut correct = 0usize;
        for &i in &holdout {
            if memory.predict(&hvs[i])? == labels[i] {
                correct += 1;
            }
        }
        Ok(correct as f64 / holdout.len() as f64)
    };

    println!(
        "streaming {} follow-up patients into the prototype memory:\n",
        stream.len() - 20
    );
    println!("  seen   held-out accuracy");
    println!("  ----   ------------------");
    println!("  {:>4}   {:>6.1}%", 20, evaluate(&memory)? * 100.0);
    for (count, &i) in stream[20..].iter().enumerate() {
        memory.update(&hvs[i], labels[i])?;
        let seen = 21 + count;
        if seen % 80 == 0 || count == stream.len() - 21 {
            println!("  {:>4}   {:>6.1}%", seen, evaluate(&memory)? * 100.0);
        }
    }

    println!(
        "\nprototype memory footprint: 2 classes × {} bits — constant regardless of cohort size",
        dim
    );
    Ok(())
}
