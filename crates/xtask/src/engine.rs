//! The lint engine: workspace walking, rule dispatch, allowlisting, and the
//! seeded-violation selftest that keeps the linter honest.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::{rel, Rule, Violation};
use crate::source::Analysis;
use crate::{allowlist, casts, concur, gates, panics, tail, vendorcheck};

/// Runs every rule against the workspace at `root` and applies the
/// allowlist. Returns the surviving violations, sorted by file and line.
pub fn run_lint(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();

    // Pass 1: per-file rules over the audited crates' library sources,
    // collecting failpoint arm sites for the workspace-level pass.
    let mut arm_sites: Vec<(String, Vec<(usize, String)>)> = Vec::new();
    for crate_name in panics::AUDITED_CRATES {
        let src_dir = root.join("crates").join(crate_name).join("src");
        for path in rust_files(&src_dir) {
            let contents = fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let rel_path = rel(root, &path);
            let analysis = Analysis::new(&contents);
            violations.extend(panics::check_file(&rel_path, &analysis));
            violations.extend(panics::check_discards(&rel_path, &analysis));
            violations.extend(concur::check_file(&rel_path, &analysis));
            violations.extend(gates::check_file(&rel_path, &analysis));
            if crate_name == "hdc" {
                violations.extend(tail::check_file(&rel_path, &analysis));
            }
            if casts::applies_to(&rel_path) {
                violations.extend(casts::check_file(&rel_path, &analysis));
            }
            let sites = gates::failpoint_arm_sites(&analysis);
            if !sites.is_empty() {
                arm_sites.push((rel_path, sites));
            }
        }
    }

    // Pass 2: workspace-level failpoint arity against the chaos plan
    // registry (skipped when the tree has no faults crate, e.g. selftest
    // scratch workspaces).
    let plan_path = root.join("crates/faults/src/plan.rs");
    if plan_path.is_file() {
        let plan_src = fs::read_to_string(&plan_path)
            .map_err(|e| format!("reading {}: {e}", plan_path.display()))?;
        violations.extend(gates::check_failpoint_arity(
            &rel(root, &plan_path),
            &plan_src,
            &arm_sites,
        ));
    }

    // Pass 3: vendor hygiene over every manifest in the workspace.
    let mut manifests = vec![root.join("Cargo.toml")];
    for dir in ["crates", "vendor"] {
        manifests.extend(child_manifests(&root.join(dir)));
    }
    for path in manifests {
        if !path.is_file() {
            continue;
        }
        let contents =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        violations.extend(vendorcheck::check_manifest(&rel(root, &path), &contents));
    }

    // The allowlist waives recorded panic/kernel-index sites and reports its
    // own integrity problems (budget breaches, stale entries).
    let allow_path = root.join("crates/xtask/allow.toml");
    let list = if allow_path.is_file() {
        let contents = fs::read_to_string(&allow_path)
            .map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
        match allowlist::parse(&contents) {
            Ok(list) => list,
            Err(msg) => {
                violations.push(Violation {
                    file: "crates/xtask/allow.toml".to_string(),
                    line: 0,
                    rule: Rule::Allowlist,
                    message: msg,
                    line_text: String::new(),
                });
                allowlist::Allowlist {
                    initial_audit: 0,
                    budget: 0,
                    entries: Vec::new(),
                }
            }
        }
    } else {
        allowlist::Allowlist {
            initial_audit: 0,
            budget: 0,
            entries: Vec::new(),
        }
    };
    let (mut remaining, integrity) = allowlist::apply(&list, violations);
    remaining.extend(integrity);
    remaining.sort_by(|a, b| a.file.cmp(&b.file).then(a.line.cmp(&b.line)));
    Ok(remaining)
}

/// Walks `dir` recursively collecting `.rs` files in sorted order.
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// `Cargo.toml` files one level below `dir` (e.g. `crates/*/Cargo.toml`).
pub fn child_manifests(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let manifest = entry.path().join("Cargo.toml");
        if manifest.is_file() {
            out.push(manifest);
        }
    }
    out.sort();
    out
}

/// Locates the workspace root: `CARGO_MANIFEST_DIR/../..` when run via
/// cargo, otherwise walking up from the current directory looking for a
/// manifest with a `[workspace]` table.
pub fn workspace_root() -> Option<PathBuf> {
    if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let candidate = PathBuf::from(&manifest_dir).join("../..");
        if let Ok(root) = candidate.canonicalize() {
            if is_workspace_root(&root) {
                return Some(root);
            }
        }
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn is_workspace_root(dir: &Path) -> bool {
    fs::read_to_string(dir.join("Cargo.toml")).is_ok_and(|c| c.contains("[workspace]"))
}

/// One selftest expectation: the seeded violation the engine must report.
struct Seed {
    rule: Rule,
    file: &'static str,
    line: usize,
    needle: &'static str,
}

/// Builds a scratch workspace with one seeded violation per rule family
/// and asserts the lint engine reports each with its exact file and line.
pub fn run_selftest(scratch: &Path) -> Result<String, String> {
    let write = |rel_path: &str, contents: &str| -> Result<(), String> {
        let path = scratch.join(rel_path);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
        }
        fs::write(&path, contents).map_err(|e| format!("write {}: {e}", path.display()))
    };

    // Internal sanity check first: the lexer must reconstruct the engine's
    // own largest source byte-for-byte before it is trusted to lint.
    let self_src = include_str!("structure.rs");
    let toks = crate::lex::lex(self_src);
    if crate::lex::reconstruct(self_src, &toks) != self_src {
        return Err("lexer round-trip failed on crates/xtask/src/structure.rs".to_string());
    }

    // Seed 1: a registry dependency — the workspace must be offline.
    write(
        "Cargo.toml",
        "[workspace]\nmembers = [\"crates/*\"]\n\n[workspace.dependencies]\nserde = \"1.0\"\n",
    )?;
    // Seed 2: an unmasked tail write in a word-level kernel.
    write(
        "crates/hdc/src/binary.rs",
        "pub struct Hv { words: Vec<u64> }\n\
         impl Hv {\n\
             pub fn ones(&mut self) {\n\
                 self.words.fill(u64::MAX);\n\
             }\n\
         }\n",
    )?;
    // Seed 3: a library unwrap outside test code.
    write(
        "crates/ml/src/lib.rs",
        "pub fn first(xs: &[u32]) -> u32 {\n    *xs.first().unwrap()\n}\n",
    )?;
    // Seed 4 (concurrency family): a rayon scope closure mutating a capture
    // from outside the parallel region, and an unjustified Relaxed load.
    write(
        "crates/hdc/src/bitmatrix.rs",
        "pub fn count_all(rows: &[u64]) -> u64 {\n\
             let mut total = 0u64;\n\
             rayon::scope(|s| {\n\
                 s.spawn(|_| {\n\
                     total += 1;\n\
                 });\n\
             });\n\
             let c = std::sync::atomic::AtomicU64::new(total);\n\
             c.load(std::sync::atomic::Ordering::Relaxed)\n\
         }\n",
    )?;
    // Seed 5 (cast family): a narrowing usize→u32 cast in a kernel file.
    write(
        "crates/hdc/src/bundle.rs",
        "pub fn vote_threshold(n_inputs: usize) -> u32 {\n\
             n_inputs as u32\n\
         }\n",
    )?;
    // Seed 6 (gate family): a pub item gated on a feature with no shim on
    // the not() side — the default build silently loses the name.
    write(
        "crates/hdc/src/obs.rs",
        "#[cfg(feature = \"obs\")]\n\
         pub fn span(name: &'static str) -> u32 {\n\
             name.len() as u32\n\
         }\n",
    )?;
    // Seed 7 (discard rule): a silently dropped fallible call.
    write(
        "crates/data/src/lib.rs",
        "pub fn cleanup(path: &std::path::Path) {\n\
             let _ = std::fs::remove_file(path);\n\
         }\n",
    )?;

    let violations = run_lint(scratch)?;
    let mut report = String::from("seeded violations detected:\n");
    for v in &violations {
        report.push_str(&format!("  {v}\n"));
    }

    let seeds = [
        Seed {
            rule: Rule::Vendor,
            file: "Cargo.toml",
            line: 5,
            needle: "registry",
        },
        Seed {
            rule: Rule::TailInvariant,
            file: "crates/hdc/src/binary.rs",
            line: 4,
            needle: "re-masking",
        },
        Seed {
            rule: Rule::Panic,
            file: "crates/ml/src/lib.rs",
            line: 2,
            needle: ".unwrap()",
        },
        Seed {
            rule: Rule::ConcurrencyCapture,
            file: "crates/hdc/src/bitmatrix.rs",
            line: 5,
            needle: "total",
        },
        Seed {
            rule: Rule::RelaxedOrdering,
            file: "crates/hdc/src/bitmatrix.rs",
            line: 9,
            needle: "Relaxed",
        },
        Seed {
            rule: Rule::CastSafety,
            file: "crates/hdc/src/bundle.rs",
            line: 2,
            needle: "as u32",
        },
        Seed {
            rule: Rule::FeatureGate,
            file: "crates/hdc/src/obs.rs",
            line: 2,
            needle: "span",
        },
        Seed {
            rule: Rule::Discard,
            file: "crates/data/src/lib.rs",
            line: 2,
            needle: "discard",
        },
    ];
    for seed in &seeds {
        let hit = violations.iter().find(|v| {
            v.rule == seed.rule && v.file == seed.file && v.message.contains(seed.needle)
        });
        let Some(hit) = hit else {
            return Err(format!(
                "expected a [{}] violation in {} mentioning `{}`; got:\n{report}",
                seed.rule.tag(),
                seed.file,
                seed.needle
            ));
        };
        if hit.line != seed.line {
            return Err(format!(
                "[{}] violation in {} reported at line {}, expected line {}",
                seed.rule.tag(),
                seed.file,
                hit.line,
                seed.line
            ));
        }
    }
    if violations.len() < seeds.len() {
        return Err(format!(
            "expected at least {} violations, got:\n{report}",
            seeds.len()
        ));
    }

    // Negative control: the same rule patterns placed inside string
    // literals and comments must produce zero findings.
    let decoy_root = scratch.join("decoy");
    let decoy = "pub fn decoy() -> &'static str {\n\
                     // total += 1; x as u32; .unwrap(); Ordering::Relaxed\n\
                     /* rayon::scope(|s| { hits += 1; }) */\n\
                     \"let _ = remove_file(p); n_inputs as u32; panic!()\"\n\
                 }\n";
    let write_decoy = |rel_path: &str| -> Result<(), String> {
        let path = decoy_root.join(rel_path);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
        }
        fs::write(&path, decoy).map_err(|e| format!("write {}: {e}", path.display()))
    };
    write_decoy("crates/hdc/src/binary.rs")?;
    write_decoy("crates/ml/src/lib.rs")?;
    fs::write(decoy_root.join("Cargo.toml"), "[workspace]\n")
        .map_err(|e| format!("write decoy manifest: {e}"))?;
    let decoy_violations = run_lint(&decoy_root)?;
    if !decoy_violations.is_empty() {
        let mut msg = String::from("patterns inside strings/comments must not be reported; got:\n");
        for v in &decoy_violations {
            msg.push_str(&format!("  {v}\n"));
        }
        return Err(msg);
    }
    report.push_str("string/comment decoys produced zero findings\n");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selftest_catches_every_seeded_violation() {
        let scratch =
            std::env::temp_dir().join(format!("xtask-selftest-ut-{}", std::process::id()));
        let result = run_selftest(&scratch);
        let _ = fs::remove_dir_all(&scratch);
        let report = result.expect("selftest must pass");
        assert!(report.contains("crates/ml/src/lib.rs:2"));
        assert!(report.contains("crates/hdc/src/binary.rs:4"));
        assert!(report.contains("crates/hdc/src/bitmatrix.rs:5"));
        assert!(report.contains("crates/hdc/src/bundle.rs:2"));
        assert!(report.contains("crates/hdc/src/obs.rs:2"));
        assert!(report.contains("crates/data/src/lib.rs:2"));
        assert!(report.contains("zero findings"));
    }
}
