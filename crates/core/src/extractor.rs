//! The paper's feature-extraction stage: records → patient hypervectors.

use crate::error::HyperfexError;
use hyperfex_data::{ColumnKind, ColumnSpec, Table};
use hyperfex_hdc::binary::{BinaryHypervector, Dim};
use hyperfex_hdc::bitmatrix::BitMatrix;
use hyperfex_hdc::classify::ClassAccumulators;
use hyperfex_hdc::distill::{discrimination_scores, BitSelection};
use hyperfex_hdc::encoding::{FeatureSpec, QuarantineReport, RecordEncoder, RecordSchema};
use hyperfex_hdc::stream::{RecordStream, StreamEncoder, StreamOutcome, StreamSink};
use hyperfex_ml::Matrix;

/// Encodes patient records into binary hypervectors and exposes them in
/// both hypervector form (for Hamming classification) and 0/1 matrix form
/// (for use as ML input features — the paper's "extraction" step).
///
/// The extractor is *fitted on training data only*: the level encoders'
/// `[min, max]` ranges come from the rows passed to
/// [`HdcFeatureExtractor::fit`], and unseen out-of-range values clamp to
/// the boundary codes exactly as the paper prescribes for "new data that
/// hasn't been seen by the encoder".
#[derive(Debug, Clone)]
pub struct HdcFeatureExtractor {
    dim: Dim,
    seed: u64,
    levels: Option<usize>,
    encoder: Option<RecordEncoder>,
}

impl HdcFeatureExtractor {
    /// Creates an unfitted extractor. The paper's dimensionality is
    /// [`Dim::PAPER`] (10,000 bits).
    #[must_use]
    pub fn new(dim: Dim, seed: u64) -> Self {
        Self {
            dim,
            seed,
            levels: None,
            encoder: None,
        }
    }

    /// Quantizes continuous features to `levels` codes instead of the
    /// paper's formula-based continuous encoding (resolution ablation).
    #[must_use]
    pub fn with_levels(mut self, levels: usize) -> Self {
        self.levels = Some(levels);
        self
    }

    /// The output dimensionality.
    #[must_use]
    pub fn dim(&self) -> Dim {
        self.dim
    }

    /// Builds per-feature encoders from the table's schema and the value
    /// ranges observed in the given rows (pass training-row indices to
    /// avoid leaking test-set ranges; pass `None` to use every row).
    pub fn fit(&mut self, table: &Table, rows: Option<&[usize]>) -> Result<(), HyperfexError> {
        let _span = crate::obs::span("core/extractor_fit");
        if table.is_empty() {
            return Err(HyperfexError::Pipeline(
                "cannot fit on an empty table".into(),
            ));
        }
        let all_rows: Vec<usize>;
        let rows = match rows {
            Some(r) => r,
            None => {
                all_rows = (0..table.n_rows()).collect();
                &all_rows
            }
        };
        let view = table.select_rows(rows);
        let mut specs = Vec::with_capacity(table.n_cols());
        for (col, spec) in table.columns().iter().enumerate() {
            match spec.kind {
                ColumnKind::Binary => specs.push(FeatureSpec::binary(spec.name.clone())),
                ColumnKind::Continuous => {
                    let (min, max) = view.column_range(col).ok_or_else(|| {
                        HyperfexError::Pipeline(format!(
                            "column `{}` has no observed values to fit a range",
                            spec.name
                        ))
                    })?;
                    // Degenerate (constant) columns get a token range so the
                    // encoder stays valid; every value maps to the seed code.
                    let (min, max) = if max > min {
                        (min, max)
                    } else {
                        (min, min + 1.0)
                    };
                    specs.push(FeatureSpec::continuous(spec.name.clone(), min, max));
                }
            }
        }
        self.encoder = Some(RecordEncoder::with_quantization(
            self.dim,
            RecordSchema::new(specs),
            self.seed,
            self.levels,
        )?);
        Ok(())
    }

    /// Encodes the selected rows (or all rows) into patient hypervectors.
    pub fn transform(
        &self,
        table: &Table,
        rows: Option<&[usize]>,
    ) -> Result<Vec<BinaryHypervector>, HyperfexError> {
        let _span = crate::obs::span("core/transform");
        let encoder = self
            .encoder
            .as_ref()
            .ok_or_else(|| HyperfexError::Pipeline("transform called before fit".into()))?;
        let all_rows: Vec<usize>;
        let rows = match rows {
            Some(r) => r,
            None => {
                all_rows = (0..table.n_rows()).collect();
                &all_rows
            }
        };
        let mut missing_checked = Vec::with_capacity(rows.len());
        for &i in rows {
            if table.row_has_missing(i) {
                return Err(HyperfexError::Pipeline(format!(
                    "row {i} contains missing values; impute or drop before encoding"
                )));
            }
            missing_checked.push(table.row(i).to_vec());
        }
        Ok(encoder.encode_batch(&missing_checked)?)
    }

    /// Lenient variant of [`HdcFeatureExtractor::transform`]: rows that
    /// cannot be encoded (missing values, NaN, injected faults) are
    /// quarantined instead of aborting the whole batch.
    ///
    /// Only structural problems remain fatal (`fit` not called). The
    /// returned [`LenientTransform`] carries one hypervector per surviving
    /// row, the *original table indices* of the survivors, and the
    /// quarantine accounting; `report` entries index into the requested row
    /// selection, in ascending order.
    pub fn transform_lenient(
        &self,
        table: &Table,
        rows: Option<&[usize]>,
    ) -> Result<LenientTransform, HyperfexError> {
        let _span = crate::obs::span("core/transform_lenient");
        let encoder = self
            .encoder
            .as_ref()
            .ok_or_else(|| HyperfexError::Pipeline("transform called before fit".into()))?;
        let all_rows: Vec<usize>;
        let rows = match rows {
            Some(r) => r,
            None => {
                all_rows = (0..table.n_rows()).collect();
                &all_rows
            }
        };
        let values: Vec<Vec<f64>> = rows.iter().map(|&i| table.row(i).to_vec()).collect();
        let batch = encoder.encode_batch_lenient(&values);
        let kept_rows: Vec<usize> = batch.kept.iter().map(|&i| rows[i]).collect();
        crate::obs::counter_add("core/rows_kept", kept_rows.len() as u64);
        crate::obs::counter_add("core/rows_quarantined", batch.report.quarantined() as u64);
        Ok(LenientTransform {
            hypervectors: batch.hypervectors,
            kept_rows,
            report: batch.report,
        })
    }

    /// Fits the per-feature encoders from a [`RecordStream`] in a single
    /// pass with O(columns) state: per-column min/max watermarks for
    /// continuous features, nothing for binary ones.
    ///
    /// The column schema cannot be inferred from a bare value stream, so
    /// the caller supplies it (e.g. `table.columns()` or a hand-built
    /// `ColumnSpec` list for synthetic cohorts). Records whose arity does
    /// not match the schema, and `NaN`/missing values, are *skipped for
    /// range purposes* — range fitting is a statistic, not an encode, so a
    /// bad record narrows nothing; encode-time strictness happens later in
    /// [`HdcFeatureExtractor::transform_stream`].
    pub fn fit_stream<S: RecordStream + ?Sized>(
        &mut self,
        columns: &[ColumnSpec],
        stream: &mut S,
    ) -> Result<(), HyperfexError> {
        let _span = crate::obs::span("core/extractor_fit_stream");
        if columns.is_empty() {
            return Err(HyperfexError::Pipeline(
                "cannot fit on an empty column schema".into(),
            ));
        }
        let mut ranges: Vec<Option<(f64, f64)>> = vec![None; columns.len()];
        let mut values = Vec::with_capacity(columns.len());
        let mut seen = 0usize;
        loop {
            values.clear();
            if stream.next_record(&mut values).is_none() {
                break;
            }
            seen += 1;
            if values.len() != columns.len() {
                continue;
            }
            for (slot, &v) in ranges.iter_mut().zip(&values) {
                if !v.is_finite() {
                    continue;
                }
                match slot {
                    Some((min, max)) => {
                        *min = min.min(v);
                        *max = max.max(v);
                    }
                    None => *slot = Some((v, v)),
                }
            }
        }
        if seen == 0 {
            return Err(HyperfexError::Pipeline(
                "cannot fit on an empty record stream".into(),
            ));
        }
        let mut specs = Vec::with_capacity(columns.len());
        for (spec, range) in columns.iter().zip(&ranges) {
            match spec.kind {
                ColumnKind::Binary => specs.push(FeatureSpec::binary(spec.name.clone())),
                ColumnKind::Continuous => {
                    let (min, max) = range.ok_or_else(|| {
                        HyperfexError::Pipeline(format!(
                            "column `{}` has no observed values to fit a range",
                            spec.name
                        ))
                    })?;
                    // Degenerate (constant) columns get a token range so the
                    // encoder stays valid; every value maps to the seed code.
                    let (min, max) = if max > min {
                        (min, max)
                    } else {
                        (min, min + 1.0)
                    };
                    specs.push(FeatureSpec::continuous(spec.name.clone(), min, max));
                }
            }
        }
        self.encoder = Some(RecordEncoder::with_quantization(
            self.dim,
            RecordSchema::new(specs),
            self.seed,
            self.levels,
        )?);
        Ok(())
    }

    /// A [`StreamEncoder`] borrowing the fitted record encoder, for callers
    /// that want to configure micro-batching or drive sinks directly.
    pub fn stream_encoder(&self) -> Result<StreamEncoder<'_>, HyperfexError> {
        let encoder = self
            .encoder
            .as_ref()
            .ok_or_else(|| HyperfexError::Pipeline("transform called before fit".into()))?;
        Ok(StreamEncoder::new(encoder))
    }

    /// Encodes a [`RecordStream`] straight into a [`StreamSink`] without
    /// ever materialising the cohort: peak memory is one micro-batch plus
    /// the sink's own O(dim) state, independent of stream length.
    ///
    /// Strict: the first record that fails to encode aborts with its typed
    /// error (mirroring [`HdcFeatureExtractor::transform`]). Returns the
    /// number of records absorbed by the sink.
    pub fn transform_stream<S, K>(&self, stream: &mut S, sink: &mut K) -> Result<usize, HyperfexError>
    where
        S: RecordStream + ?Sized,
        K: StreamSink + ?Sized,
    {
        let _span = crate::obs::span("core/transform_stream");
        Ok(self.stream_encoder()?.encode_stream(stream, sink)?)
    }

    /// Lenient variant of [`HdcFeatureExtractor::transform_stream`]:
    /// records that cannot be encoded are quarantined instead of aborting,
    /// mirroring [`HdcFeatureExtractor::transform_lenient`]. The returned
    /// [`StreamOutcome`] accounts for every record seen
    /// (`kept + quarantined == seen`).
    pub fn transform_stream_lenient<S, K>(
        &self,
        stream: &mut S,
        sink: &mut K,
    ) -> Result<StreamOutcome, HyperfexError>
    where
        S: RecordStream + ?Sized,
        K: StreamSink + ?Sized,
    {
        let _span = crate::obs::span("core/transform_stream_lenient");
        let outcome = self.stream_encoder()?.encode_stream_lenient(stream, sink)?;
        crate::obs::counter_add("core/rows_kept", outcome.report.kept() as u64);
        crate::obs::counter_add("core/rows_quarantined", outcome.report.quarantined() as u64);
        Ok(outcome)
    }

    /// Fit on all rows, then transform all rows.
    pub fn fit_transform(
        &mut self,
        table: &Table,
    ) -> Result<Vec<BinaryHypervector>, HyperfexError> {
        self.fit(table, None)?;
        self.transform(table, None)
    }

    /// Encodes one row into its *per-feature* hypervectors (before
    /// bundling) — used by ablations that compare bundling backends.
    pub fn feature_hypervectors(
        &self,
        table: &Table,
        row: usize,
    ) -> Result<Vec<BinaryHypervector>, HyperfexError> {
        let encoder = self
            .encoder
            .as_ref()
            .ok_or_else(|| HyperfexError::Pipeline("transform called before fit".into()))?;
        if table.row_has_missing(row) {
            return Err(HyperfexError::Pipeline(format!(
                "row {row} contains missing values; impute or drop before encoding"
            )));
        }
        Ok(encoder.encode_features(table.row(row))?)
    }

    /// Distils the fitted encoder down to the `k_bits` most
    /// class-discriminative bit positions.
    ///
    /// Encodes the selected rows (training rows — pass the same selection
    /// used for [`HdcFeatureExtractor::fit`] to avoid leaking test-set
    /// statistics), accumulates per-class per-bit set counts, ranks bits by
    /// the [`discrimination_scores`] margin and keeps the top `k_bits`.
    /// The returned [`DistilledExtractor`] encodes new records *directly*
    /// at the pruned dimensionality — no full-width detour.
    pub fn distill(
        &self,
        table: &Table,
        rows: Option<&[usize]>,
        k_bits: usize,
    ) -> Result<DistilledExtractor, HyperfexError> {
        let _span = crate::obs::span("core/distill");
        let hvs = self.transform(table, rows)?;
        let all_rows: Vec<usize>;
        let rows = match rows {
            Some(r) => r,
            None => {
                all_rows = (0..table.n_rows()).collect();
                &all_rows
            }
        };
        let mut acc = ClassAccumulators::new(self.dim);
        for (hv, &row) in hvs.iter().zip(rows) {
            let label = table.labels()[row];
            acc.grow(label);
            acc.add(label, hv, 1);
        }
        let scores = discrimination_scores(&acc)
            .map_err(|e| HyperfexError::Pipeline(format!("distillation ranking failed: {e}")))?;
        let selection = BitSelection::top_k(self.dim, &scores, k_bits)
            .map_err(|e| HyperfexError::Pipeline(format!("distillation selection failed: {e}")))?;
        self.distill_with(&selection)
    }

    /// Distils the fitted encoder with an externally supplied selection
    /// (e.g. a random control selection for ranked-vs-random ablations, or
    /// a selection loaded from a serving snapshot).
    pub fn distill_with(
        &self,
        selection: &BitSelection,
    ) -> Result<DistilledExtractor, HyperfexError> {
        let encoder = self
            .encoder
            .as_ref()
            .ok_or_else(|| HyperfexError::Pipeline("distill called before fit".into()))?;
        Ok(DistilledExtractor {
            encoder: encoder.prune(selection)?,
            selection: selection.clone(),
        })
    }

    /// Converts hypervectors into a dense 0/1 `f32` matrix — the "use the
    /// hypervectors to train classification models" step (§II).
    ///
    /// Every input must share one dimensionality; a mixed-dimension slice
    /// is reported as an error up front rather than panicking mid-copy.
    /// Rows are unpacked straight from the packed words (one 64-bit load
    /// per 64 matrix cells) and split across rayon workers in contiguous
    /// row blocks.
    pub fn to_matrix(hypervectors: &[BinaryHypervector]) -> Result<Matrix, HyperfexError> {
        let _span = crate::obs::span("core/to_matrix");
        let Some(first) = hypervectors.first() else {
            return Ok(Matrix::zeros(0, 0));
        };
        let d = first.len();
        for (i, hv) in hypervectors.iter().enumerate() {
            if hv.len() != d {
                return Err(HyperfexError::Pipeline(format!(
                    "to_matrix: hypervector {i} has dimensionality {} but hypervector 0 has {d}",
                    hv.len()
                )));
            }
        }
        let n = hypervectors.len();
        let mut m = Matrix::zeros(n, d);
        let block = n.div_ceil(rayon::current_num_threads().max(1));
        rayon::scope(|s| {
            for (cells, hvs) in m
                .as_mut_slice()
                .chunks_mut(block * d)
                .zip(hypervectors.chunks(block))
            {
                s.spawn(move |_| {
                    for (row, hv) in cells.chunks_mut(d).zip(hvs) {
                        unpack_bits_into(hv, row);
                    }
                });
            }
        });
        Ok(m)
    }

    /// Packs hypervectors into a [`BitMatrix`] — the same design matrix as
    /// [`HdcFeatureExtractor::to_matrix`] but kept in its native packed
    /// form (64 features per storage word), which the ML layer's popcount
    /// fast paths consume directly without ever materialising f32 cells.
    ///
    /// Mixed-dimension slices are reported as an error up front, mirroring
    /// `to_matrix`; an empty slice yields an empty `0 × 0` matrix.
    pub fn to_bit_matrix(hypervectors: &[BinaryHypervector]) -> Result<BitMatrix, HyperfexError> {
        let _span = crate::obs::span("core/to_bit_matrix");
        if hypervectors.is_empty() {
            return Ok(BitMatrix::zeros(0, Dim::new(1)));
        }
        let d = hypervectors[0].len();
        BitMatrix::from_hypervectors(hypervectors).map_err(|_| {
            let bad = hypervectors
                .iter()
                .position(|hv| hv.len() != d)
                .unwrap_or(0);
            HyperfexError::Pipeline(format!(
                "to_bit_matrix: hypervector {bad} has dimensionality {} but hypervector 0 has {d}",
                hypervectors[bad].len()
            ))
        })
    }
}

/// A fitted extractor remapped into a distilled bit space: encodes records
/// directly at the pruned dimensionality and can gather already-encoded
/// full-width hypervectors into the same space (bit-identically — majority
/// bundling commutes with column gather).
#[derive(Debug, Clone)]
pub struct DistilledExtractor {
    encoder: RecordEncoder,
    selection: BitSelection,
}

impl DistilledExtractor {
    /// The pruned output dimensionality.
    #[must_use]
    pub fn dim(&self) -> Dim {
        self.encoder.dim()
    }

    /// The bit selection this extractor was distilled with.
    #[must_use]
    pub fn selection(&self) -> &BitSelection {
        &self.selection
    }

    /// The pruned record encoder.
    #[must_use]
    pub fn encoder(&self) -> &RecordEncoder {
        &self.encoder
    }

    /// Encodes the selected rows (or all rows) straight into pruned-space
    /// hypervectors.
    pub fn transform(
        &self,
        table: &Table,
        rows: Option<&[usize]>,
    ) -> Result<Vec<BinaryHypervector>, HyperfexError> {
        let _span = crate::obs::span("core/distilled_transform");
        let all_rows: Vec<usize>;
        let rows = match rows {
            Some(r) => r,
            None => {
                all_rows = (0..table.n_rows()).collect();
                &all_rows
            }
        };
        let mut values = Vec::with_capacity(rows.len());
        for &i in rows {
            if table.row_has_missing(i) {
                return Err(HyperfexError::Pipeline(format!(
                    "row {i} contains missing values; impute or drop before encoding"
                )));
            }
            values.push(table.row(i).to_vec());
        }
        Ok(self.encoder.encode_batch(&values)?)
    }

    /// Gathers already-encoded full-width hypervectors into the pruned
    /// space. Equal to re-encoding the same records through
    /// [`DistilledExtractor::transform`], bit for bit.
    pub fn gather(
        &self,
        hypervectors: &[BinaryHypervector],
    ) -> Result<Vec<BinaryHypervector>, HyperfexError> {
        hypervectors
            .iter()
            .map(|hv| Ok(self.selection.gather_hypervector(hv)?))
            .collect()
    }
}

/// The outcome of [`HdcFeatureExtractor::transform_lenient`]: hypervectors
/// for the rows that survived encoding, which table rows they came from,
/// and why the rest were quarantined.
#[derive(Debug, Clone)]
pub struct LenientTransform {
    /// One hypervector per surviving row, in ascending row order.
    pub hypervectors: Vec<BinaryHypervector>,
    /// Original table index of each surviving hypervector.
    pub kept_rows: Vec<usize>,
    /// Per-record quarantine accounting (entry rows index the requested
    /// selection, not the table).
    pub report: QuarantineReport,
}

/// Adapts a [`Table`] (or a row selection of one) into a [`RecordStream`],
/// yielding each row's values and its label. Lets in-memory cohorts flow
/// through the same single-pass [`HdcFeatureExtractor::transform_stream`]
/// path as unbounded sources, which is how the streaming-vs-batch
/// equivalence tests drive both pipelines from one table.
#[derive(Debug)]
pub struct TableStream<'a> {
    table: &'a Table,
    rows: Option<&'a [usize]>,
    pos: usize,
}

impl<'a> TableStream<'a> {
    /// Streams the given row selection, or every row when `rows` is `None`.
    ///
    /// Out-of-bounds indices in the selection are reported up front, so
    /// `next_record` never panics mid-stream.
    pub fn new(table: &'a Table, rows: Option<&'a [usize]>) -> Result<Self, HyperfexError> {
        if let Some(selection) = rows {
            if let Some(&bad) = selection.iter().find(|&&i| i >= table.n_rows()) {
                return Err(HyperfexError::Pipeline(format!(
                    "row selection index {bad} is out of bounds for a table of {} rows",
                    table.n_rows()
                )));
            }
        }
        Ok(Self {
            table,
            rows,
            pos: 0,
        })
    }

    /// Number of records this stream will yield in total.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.map_or(self.table.n_rows(), <[usize]>::len)
    }

    /// Whether the stream yields no records at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rewinds to the first record, so one adapter can drive a fit pass
    /// and then an encode pass without rebuilding it.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }
}

impl RecordStream for TableStream<'_> {
    fn next_record(&mut self, values: &mut Vec<f64>) -> Option<usize> {
        let row = match self.rows {
            Some(selection) => *selection.get(self.pos)?,
            None => {
                if self.pos >= self.table.n_rows() {
                    return None;
                }
                self.pos
            }
        };
        self.pos += 1;
        values.extend_from_slice(self.table.row(row));
        Some(self.table.labels()[row])
    }
}

/// Writes the bits of `hv` into `row` as 0.0/1.0, reading the packed words
/// directly instead of the per-bit getter.
fn unpack_bits_into(hv: &BinaryHypervector, row: &mut [f32]) {
    let words = hv.words();
    for (w, chunk) in row.chunks_mut(64).enumerate() {
        let word = words[w];
        for (j, cell) in chunk.iter_mut().enumerate() {
            *cell = ((word >> j) & 1) as f32;
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-aligned assertions read clearer
mod tests {
    use super::*;
    use hyperfex_data::ColumnSpec;

    fn mixed_table() -> Table {
        Table::new(
            vec![
                ColumnSpec::continuous("glucose"),
                ColumnSpec::binary("polyuria"),
            ],
            vec![
                vec![90.0, 0.0],
                vec![120.0, 1.0],
                vec![180.0, 1.0],
                vec![100.0, 0.0],
            ],
            vec![0, 1, 1, 0],
        )
        .unwrap()
    }

    #[test]
    fn fit_transform_produces_one_hv_per_row() {
        let table = mixed_table();
        let mut ext = HdcFeatureExtractor::new(Dim::new(1_000), 5);
        let hvs = ext.fit_transform(&table).unwrap();
        assert_eq!(hvs.len(), 4);
        assert!(hvs.iter().all(|hv| hv.dim() == Dim::new(1_000)));
    }

    #[test]
    fn transform_before_fit_errors() {
        let table = mixed_table();
        let ext = HdcFeatureExtractor::new(Dim::new(256), 0);
        assert!(matches!(
            ext.transform(&table, None),
            Err(HyperfexError::Pipeline(_))
        ));
    }

    #[test]
    fn ranges_come_from_training_rows_only() {
        let table = mixed_table();
        let mut ext = HdcFeatureExtractor::new(Dim::new(2_000), 9);
        // Fit on rows 0 and 3 (glucose 90..100), transform row 2 (180):
        // it must clamp to the max code, i.e. equal the encoding of 100.
        ext.fit(&table, Some(&[0, 3])).unwrap();
        let out = ext.transform(&table, Some(&[2, 3])).unwrap();
        let clamped = &out[0];
        let boundary =
            Table::new(table.columns().to_vec(), vec![vec![100.0, 1.0]], vec![1]).unwrap();
        let expected = ext.transform(&boundary, None).unwrap();
        assert_eq!(clamped, &expected[0]);
    }

    #[test]
    fn missing_values_are_rejected_with_row_context() {
        let table = Table::new(
            vec![ColumnSpec::continuous("a")],
            vec![vec![1.0], vec![f64::NAN], vec![2.0]],
            vec![0, 1, 0],
        )
        .unwrap();
        let mut ext = HdcFeatureExtractor::new(Dim::new(128), 0);
        ext.fit(&table, Some(&[0, 2])).unwrap();
        let err = ext.transform(&table, None).unwrap_err();
        assert!(err.to_string().contains("row 1"));
    }

    #[test]
    fn lenient_transform_quarantines_missing_rows() {
        let table = Table::new(
            vec![ColumnSpec::continuous("a")],
            vec![vec![1.0], vec![f64::NAN], vec![2.0], vec![f64::NAN]],
            vec![0, 1, 0, 1],
        )
        .unwrap();
        let mut ext = HdcFeatureExtractor::new(Dim::new(128), 0);
        ext.fit(&table, Some(&[0, 2])).unwrap();
        let lenient = ext.transform_lenient(&table, None).unwrap();
        assert_eq!(lenient.kept_rows, vec![0, 2]);
        assert_eq!(lenient.hypervectors.len(), 2);
        assert_eq!(lenient.report.quarantined(), 2);
        assert_eq!(lenient.report.total(), 4);
        // Survivors are identical to the strict path over the same rows.
        let strict = ext.transform(&table, Some(&[0, 2])).unwrap();
        assert_eq!(lenient.hypervectors, strict);
        // Selections are honoured and report rows index the selection.
        let subset = ext.transform_lenient(&table, Some(&[3, 2])).unwrap();
        assert_eq!(subset.kept_rows, vec![2]);
        assert_eq!(subset.report.entries()[0].row, 0);
    }

    #[test]
    fn constant_column_is_tolerated() {
        let table = Table::new(
            vec![ColumnSpec::continuous("const"), ColumnSpec::continuous("x")],
            vec![vec![5.0, 1.0], vec![5.0, 2.0]],
            vec![0, 1],
        )
        .unwrap();
        let mut ext = HdcFeatureExtractor::new(Dim::new(512), 1);
        let hvs = ext.fit_transform(&table).unwrap();
        assert_eq!(hvs.len(), 2);
    }

    #[test]
    fn to_matrix_is_binary_and_aligned() {
        let table = mixed_table();
        let mut ext = HdcFeatureExtractor::new(Dim::new(640), 2);
        let hvs = ext.fit_transform(&table).unwrap();
        let m = HdcFeatureExtractor::to_matrix(&hvs).unwrap();
        assert_eq!(m.n_rows(), 4);
        assert_eq!(m.n_cols(), 640);
        for i in 0..4 {
            for (j, bit) in hvs[i].iter_bits().enumerate() {
                assert_eq!(m.get(i, j), f32::from(u8::from(bit)));
            }
        }
    }

    #[test]
    fn to_matrix_of_empty_slice_is_empty() {
        let m = HdcFeatureExtractor::to_matrix(&[]).unwrap();
        assert_eq!(m.n_rows(), 0);
        assert_eq!(m.n_cols(), 0);
    }

    #[test]
    fn to_matrix_rejects_mixed_dimensions() {
        // Regression: this used to index out of bounds (panic) when a later
        // hypervector was longer than the first; now it is a Pipeline error
        // naming the offending index.
        let hvs = vec![
            BinaryHypervector::zeros(Dim::new(128)),
            BinaryHypervector::zeros(Dim::new(256)),
        ];
        let err = HdcFeatureExtractor::to_matrix(&hvs).unwrap_err();
        assert!(matches!(err, HyperfexError::Pipeline(_)));
        assert!(err.to_string().contains("hypervector 1"));
        // Shorter-than-first also errors instead of leaving silent zeros.
        let hvs = vec![
            BinaryHypervector::zeros(Dim::new(256)),
            BinaryHypervector::zeros(Dim::new(128)),
        ];
        assert!(HdcFeatureExtractor::to_matrix(&hvs).is_err());
    }

    #[test]
    fn same_seed_same_codes_across_extractors() {
        let table = mixed_table();
        let mut a = HdcFeatureExtractor::new(Dim::new(512), 11);
        let mut b = HdcFeatureExtractor::new(Dim::new(512), 11);
        assert_eq!(
            a.fit_transform(&table).unwrap(),
            b.fit_transform(&table).unwrap()
        );
        let mut c = HdcFeatureExtractor::new(Dim::new(512), 12);
        assert_ne!(
            a.fit_transform(&table).unwrap(),
            c.fit_transform(&table).unwrap()
        );
    }

    #[test]
    fn distill_prunes_and_matches_gathered_encoding() {
        let table = mixed_table();
        let mut ext = HdcFeatureExtractor::new(Dim::new(1_000), 5);
        let hvs = ext.fit_transform(&table).unwrap();
        let distilled = ext.distill(&table, None, 200).unwrap();
        assert_eq!(distilled.dim(), Dim::new(200));
        assert_eq!(distilled.selection().len(), 200);
        // Direct pruned-space encoding equals gathering the full encoding.
        let direct = distilled.transform(&table, None).unwrap();
        let gathered = distilled.gather(&hvs).unwrap();
        assert_eq!(direct, gathered);
        assert!(direct.iter().all(|hv| hv.dim() == Dim::new(200)));
    }

    #[test]
    fn distill_with_accepts_external_selections() {
        use hyperfex_hdc::distill::BitSelection;
        let table = mixed_table();
        let mut ext = HdcFeatureExtractor::new(Dim::new(512), 3);
        ext.fit(&table, None).unwrap();
        let random = BitSelection::random(Dim::new(512), 64, 9).unwrap();
        let distilled = ext.distill_with(&random).unwrap();
        assert_eq!(distilled.dim(), Dim::new(64));
        assert_eq!(distilled.selection(), &random);
        // Unfitted extractor refuses.
        let unfitted = HdcFeatureExtractor::new(Dim::new(512), 3);
        assert!(unfitted.distill_with(&random).is_err());
        assert!(unfitted.distill(&table, None, 10).is_err());
    }

    #[test]
    fn distilled_ranking_prefers_discriminative_bits() {
        // Ranked selection at k bits should classify at least as well as
        // chance and its selection must be a valid ascending subset.
        let table = mixed_table();
        let mut ext = HdcFeatureExtractor::new(Dim::new(2_000), 7);
        ext.fit(&table, None).unwrap();
        let d = ext.distill(&table, None, 500).unwrap();
        let indices = d.selection().indices();
        assert!(indices.windows(2).all(|w| w[0] < w[1]));
        assert!(indices.iter().all(|&i| i < 2_000));
    }

    #[test]
    fn empty_table_rejected() {
        let table = Table::new(vec![ColumnSpec::continuous("a")], vec![], vec![]).unwrap();
        let mut ext = HdcFeatureExtractor::new(Dim::new(64), 0);
        assert!(ext.fit(&table, None).is_err());
    }

    #[test]
    fn fit_stream_matches_batch_fit_bit_exactly() {
        let table = mixed_table();
        let mut batch = HdcFeatureExtractor::new(Dim::new(1_000), 5);
        batch.fit(&table, None).unwrap();
        let batch_hvs = batch.transform(&table, None).unwrap();

        let mut streamed = HdcFeatureExtractor::new(Dim::new(1_000), 5);
        let mut fit_pass = TableStream::new(&table, None).unwrap();
        streamed.fit_stream(table.columns(), &mut fit_pass).unwrap();
        let mut encode_pass = TableStream::new(&table, None).unwrap();
        let mut sink = hyperfex_hdc::stream::CollectSink::default();
        let absorbed = streamed
            .transform_stream(&mut encode_pass, &mut sink)
            .unwrap();
        assert_eq!(absorbed, table.n_rows());
        assert_eq!(sink.labels(), table.labels());
        let (stream_hvs, _) = sink.into_parts();
        assert_eq!(stream_hvs, batch_hvs);
    }

    #[test]
    fn table_stream_respects_row_selection_and_rewind() {
        let table = mixed_table();
        let rows = [2usize, 0];
        let mut stream = TableStream::new(&table, Some(&rows)).unwrap();
        assert_eq!(stream.len(), 2);
        let mut values = Vec::new();
        assert_eq!(stream.next_record(&mut values), Some(table.labels()[2]));
        assert_eq!(values, table.row(2));
        stream.rewind();
        values.clear();
        assert_eq!(stream.next_record(&mut values), Some(table.labels()[2]));
        assert!(TableStream::new(&table, Some(&[99])).is_err());
    }

    #[test]
    fn transform_stream_lenient_quarantines_bad_rows() {
        let table = Table::new(
            vec![
                ColumnSpec::continuous("glucose"),
                ColumnSpec::binary("polyuria"),
            ],
            vec![
                vec![90.0, 0.0],
                vec![f64::NAN, 1.0],
                vec![180.0, 1.0],
            ],
            vec![0, 1, 1],
        )
        .unwrap();
        let mut ext = HdcFeatureExtractor::new(Dim::new(512), 3);
        // Range fitting skips the NaN row's bad cell but still sees row 3.
        let mut fit_pass = TableStream::new(&table, None).unwrap();
        ext.fit_stream(table.columns(), &mut fit_pass).unwrap();

        let mut strict_pass = TableStream::new(&table, None).unwrap();
        let mut sink = hyperfex_hdc::stream::CollectSink::default();
        assert!(ext.transform_stream(&mut strict_pass, &mut sink).is_err());

        let mut lenient_pass = TableStream::new(&table, None).unwrap();
        let mut sink = hyperfex_hdc::stream::CollectSink::default();
        let outcome = ext
            .transform_stream_lenient(&mut lenient_pass, &mut sink)
            .unwrap();
        assert_eq!(outcome.report.total(), 3);
        assert_eq!(outcome.report.kept(), 2);
        assert_eq!(outcome.report.quarantined(), 1);
        assert_eq!(outcome.absorbed, 2);
        assert_eq!(sink.labels(), &[0, 1]);
    }

    #[test]
    fn fit_stream_rejects_empty_streams_and_schemas() {
        let table = mixed_table();
        let mut ext = HdcFeatureExtractor::new(Dim::new(64), 0);
        let mut stream = TableStream::new(&table, Some(&[])).unwrap();
        assert!(ext.fit_stream(table.columns(), &mut stream).is_err());
        let mut stream = TableStream::new(&table, None).unwrap();
        assert!(ext.fit_stream(&[], &mut stream).is_err());
    }
}
